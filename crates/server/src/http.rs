//! A minimal, defensive HTTP/1.1 implementation on `std::net`.
//!
//! The server speaks exactly the subset of HTTP the wire contract
//! (`docs/API.md`) needs: one request line, headers, an optional
//! `Content-Length` body, and keep-alive connection reuse.
//!
//! # The head/body limit model
//!
//! Every byte a peer can make the server read is bounded *before* it is
//! read, by two independent caps in [`Limits`]:
//!
//! * **Head budget** ([`Limits::max_head_bytes`], default 16 KiB) — one
//!   shared byte budget covering the request line *plus all header
//!   lines*. Each line read subtracts from it, so a peer cannot dodge the
//!   cap by splitting one huge header into many small ones, nor by
//!   sending an endless header stream: the moment the cumulative head
//!   exceeds the budget the request fails with [`HttpError::HeadTooLarge`]
//!   (`431`) without buffering the rest.
//! * **Body cap** ([`Limits::max_body_bytes`], default 1 MiB,
//!   `--max-body` on the binary) — checked against the *declared*
//!   `Content-Length` before a single body byte is read, so an oversized
//!   upload is rejected with [`HttpError::PayloadTooLarge`] (`413`) at
//!   the cost of parsing its head only. Bodies are never chunked and
//!   never streamed: a request either fits the cap or is refused.
//!
//! Time is bounded separately by the socket read timeout
//! (`ServerConfig::read_timeout`): a peer that stalls mid-head or
//! mid-body trips [`HttpError::Timeout`] (`408`) instead of pinning a
//! worker. Together the three bounds mean a connection can cost at most
//! `max_head_bytes + max_body_bytes` memory and one read-timeout of
//! worker time per request, no matter how hostile the peer — and every
//! way a peer can be slow, truncated or malicious maps to a *specific*
//! failure ([`HttpError`]) that the service layer turns into a documented
//! status code instead of a panic or a hung thread.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Hard bounds on what a single request may occupy.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request line plus all header lines, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`, in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path, without any `?query` suffix.
    pub path: String,
    /// `(lower-case name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::BadRequest("body is not valid UTF-8".into()))
    }
}

/// Why a request could not be read. Each variant has one documented
/// status code ([`HttpError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line —
    /// the clean end of a keep-alive exchange, not an error to report.
    Closed,
    /// Malformed request line, header, or truncated body → `400`.
    BadRequest(String),
    /// The declared `Content-Length` exceeds [`Limits::max_body_bytes`]
    /// → `413`.
    PayloadTooLarge {
        /// What the client declared.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// Head grew past [`Limits::max_head_bytes`] → `431`.
    HeadTooLarge,
    /// The socket read timed out mid-request → `408`.
    Timeout,
}

impl HttpError {
    /// The status code the error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Closed => 400, // never sent; the connection just ends
            HttpError::BadRequest(_) => 400,
            HttpError::PayloadTooLarge { .. } => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::Timeout => 408,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge { declared, limit } => {
                write!(
                    f,
                    "payload of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::Timeout => write!(f, "timed out reading the request"),
        }
    }
}

fn io_error(e: &io::Error, what: &str) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        io::ErrorKind::UnexpectedEof => HttpError::BadRequest(format!("truncated {what}")),
        _ => HttpError::BadRequest(format!("reading {what}: {e}")),
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line, counting against the
/// shared head budget. EOF before any byte yields `Ok(None)`.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(&e, "head")),
        };
        if chunk.is_empty() {
            // EOF: clean close only when nothing of the line has arrived
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::BadRequest("truncated head".into()))
            };
        }
        let take = chunk.iter().position(|&b| b == b'\n');
        let upto = take.map_or(chunk.len(), |i| i + 1);
        if upto > *budget {
            return Err(HttpError::HeadTooLarge);
        }
        *budget -= upto;
        line.extend_from_slice(&chunk[..upto]);
        reader.consume(upto);
        if take.is_some() {
            while matches!(line.last(), Some(b'\n' | b'\r')) {
                line.pop();
            }
            let text = String::from_utf8(line)
                .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
            return Ok(Some(text));
        }
    }
}

/// Reads and validates one request. `Err(HttpError::Closed)` means the
/// peer hung up cleanly between requests.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let mut budget = limits.max_head_bytes;
    let request_line = match read_line(reader, &mut budget)? {
        None => return Err(HttpError::Closed),
        // tolerate one stray blank line before the request line (RFC 9112 §2.2)
        Some(line) if line.is_empty() => {
            read_line(reader, &mut budget)?.ok_or(HttpError::Closed)?
        }
        Some(line) => line,
    };

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequest(format!(
            "malformed method `{method}`"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    if !path.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "malformed target `{target}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget)? {
            None => return Err(HttpError::BadRequest("truncated head".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let keep_alive = match headers.iter().find(|(n, _)| n == "connection") {
        Some((_, v)) => !v.eq_ignore_ascii_case("close"),
        None => version == "HTTP/1.1",
    };

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("malformed Content-Length `{v}`")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge {
            declared: content_length,
            limit: limits.max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| io_error(&e, "body"))?;

    Ok(Request {
        method: method.to_string(),
        path,
        headers,
        body,
        keep_alive,
    })
}

/// A response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body text (JSON everywhere in this server, except `/metrics`).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the always-present `Content-Type`,
    /// `Content-Length` and `Connection` (e.g. `Retry-After` on `503`).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// A plain-text response (the Prometheus exposition format of
    /// `GET /metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
        }
    }

    /// Adds one extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes `response` onto the wire. `keep_alive` controls the
/// `Connection` header the client sees.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        connection
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()), &Limits::default())
    }

    #[test]
    fn well_formed_request_parses() {
        let req = parse(
            "POST /sessions/3/select HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\n{\"rank\":0}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions/3/select");
        assert_eq!(req.body_str().unwrap(), "{\"rank\":0}");
        assert!(req.keep_alive);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn query_strings_are_stripped_from_the_path() {
        let req = parse("GET /healthz?verbose=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "GET / HTTP/1.1 extra\r\n\r\n",
            "get / HTTP/1.1\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            "GET / SPDY/9\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\nContent-Length: soon\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::BadRequest(_))),
                "accepted {bad:?}"
            );
        }
    }

    #[test]
    fn truncated_requests_are_bad_requests_not_hangs() {
        // head cut mid-line
        assert!(matches!(
            parse("POST /sessions HT"),
            Err(HttpError::BadRequest(_))
        ));
        // headers never terminated
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        // body shorter than its declared length
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_eof_before_a_request_is_closed_not_an_error() {
        assert_eq!(parse(""), Err(HttpError::Closed));
    }

    #[test]
    fn oversized_declarations_are_rejected_before_reading() {
        let limits = Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 64,
        };
        let text = "POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n";
        let err = read_request(&mut BufReader::new(text.as_bytes()), &limits).unwrap_err();
        assert_eq!(
            err,
            HttpError::PayloadTooLarge {
                declared: 65,
                limit: 64
            }
        );
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 64,
        };
        let text = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        let err = read_request(&mut BufReader::new(text.as_bytes()), &limits).unwrap_err();
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    /// A `BufRead` that hands back the input split at fixed cut points —
    /// the shape TCP segmentation gives a parser: `fill_buf` never spans
    /// a segment boundary, so any accidental "the whole line arrives in
    /// one chunk" assumption fails here.
    struct Segmented {
        parts: Vec<Vec<u8>>,
        index: usize,
        offset: usize,
    }

    impl Segmented {
        fn new(raw: &[u8], cuts: &[usize]) -> Segmented {
            let mut parts = Vec::new();
            let mut last = 0;
            for &cut in cuts {
                assert!(cut > last && cut < raw.len(), "bad cut {cut}");
                parts.push(raw[last..cut].to_vec());
                last = cut;
            }
            parts.push(raw[last..].to_vec());
            Segmented {
                parts,
                index: 0,
                offset: 0,
            }
        }
    }

    impl io::Read for Segmented {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let chunk = self.fill_buf()?;
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            self.consume(n);
            Ok(n)
        }
    }

    impl BufRead for Segmented {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            while self.index < self.parts.len() && self.offset >= self.parts[self.index].len() {
                self.index += 1;
                self.offset = 0;
            }
            match self.parts.get(self.index) {
                None => Ok(&[]),
                Some(part) => Ok(&part[self.offset..]),
            }
        }

        fn consume(&mut self, amt: usize) {
            self.offset += amt;
        }
    }

    /// Table-driven edge cases the fault lab surfaces at the transport:
    /// truncation mid-body, heads split across TCP segments, and bodies
    /// the peer declared but never sent. Every row must resolve to a
    /// *specific* outcome — parsed request or typed error — never a hang
    /// or a panic.
    #[test]
    fn segmentation_and_truncation_edge_cases() {
        enum Expect {
            /// Parses; assert `(method, path, body)`.
            Ok(&'static str, &'static str, &'static str),
            /// Fails with `BadRequest` containing this substring.
            Bad(&'static str),
        }
        use Expect::{Bad, Ok as Parsed};

        let cases: &[(&str, &[u8], &[usize], Expect)] = &[
            (
                "header split across TCP segments",
                b"GET /healthz HTTP/1.1\r\nX-Trace: abc\r\n\r\n",
                // cuts land mid-request-line, mid-header-name, mid-value
                &[5, 25, 36],
                Parsed("GET", "/healthz", ""),
            ),
            (
                "CRLF itself split across segments",
                b"GET /healthz HTTP/1.1\r\n\r\n",
                // first \r\n split between \r and \n, and again on the blank line
                &[22, 24],
                Parsed("GET", "/healthz", ""),
            ),
            (
                "body split across segments",
                b"POST /sessions HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"rank\":0}",
                &[50, 55],
                Parsed("POST", "/sessions", "{\"rank\":0}"),
            ),
            (
                "one byte per segment end to end",
                b"POST /s HTTP/1.1\r\nContent-Length: 2\r\n\r\nok",
                &[
                    1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22,
                    23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38, 39, 40,
                ],
                Parsed("POST", "/s", "ok"),
            ),
            (
                "truncated chunk mid-body",
                b"POST /sessions HTTP/1.1\r\nContent-Length: 40\r\n\r\n{\"strategy\":\"be",
                &[47],
                Bad("body"),
            ),
            (
                "zero body bytes despite Content-Length > 0",
                b"POST /sessions HTTP/1.1\r\nContent-Length: 10\r\n\r\n",
                &[],
                Bad("body"),
            ),
            (
                "head cut mid-header line",
                b"GET /healthz HTTP/1.1\r\nX-Trunc: ab",
                &[23],
                Bad("head"),
            ),
        ];

        for (name, raw, cuts, expect) in cases {
            let result = read_request(&mut Segmented::new(raw, cuts), &Limits::default());
            match (result, expect) {
                (Ok(req), Parsed(method, path, body)) => {
                    assert_eq!(req.method, *method, "{name}");
                    assert_eq!(req.path, *path, "{name}");
                    assert_eq!(req.body_str().unwrap(), *body, "{name}");
                }
                (Err(HttpError::BadRequest(msg)), Bad(needle)) => {
                    assert!(msg.contains(needle), "{name}: `{msg}` missing `{needle}`");
                }
                (result, _) => panic!("{name}: unexpected outcome {result:?}"),
            }
        }
    }

    #[test]
    fn extra_headers_are_emitted_before_the_body() {
        let mut out = Vec::new();
        let response = Response::json(503, "{}").with_header("Retry-After", "2");
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn responses_serialize_with_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
