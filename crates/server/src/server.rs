//! The connection machinery: bind, accept, thread pool, shutdown.
//!
//! The accept loop hands each connection to a fixed pool of worker
//! threads (sized to [`std::thread::available_parallelism`] by default)
//! over an mpsc channel; each worker runs the keep-alive request loop
//! against the shared [`PlanningService`]. Shutdown is graceful and
//! race-free: a [`ShutdownHandle`] flips an atomic flag and wakes the
//! (blocking) accept call with a loopback connection; the accept loop
//! then drops the channel sender, the workers drain in-flight
//! connections and exit, and [`Server::run`] joins them all before
//! returning. `POST /shutdown` triggers the same path from the wire —
//! which is how the CI smoke job stops the binary cleanly.

use crate::http::{self, HttpError, Limits, Request, Response};
use crate::service::{error_body, http_error_response, PlanningService};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections. `0` means
    /// `available_parallelism`.
    pub threads: usize,
    /// Per-request size bounds.
    pub limits: Limits,
    /// Socket read timeout — the cap on how long a slow or stalled peer
    /// can hold a worker mid-request.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// Stops a running [`Server`] from another thread (or from the wire, via
/// `POST /shutdown`).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown and wakes the accept loop. Idempotent.
    pub fn shutdown(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        // the accept call is blocking; poke it awake so it observes the
        // flag. A wildcard bind (0.0.0.0 / [::]) is not connectable on
        // every platform — aim at the matching loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<PlanningService>,
    config: ServerConfig,
    flag: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned test port).
    pub fn bind(addr: &str, service: PlanningService, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service: Arc::new(service),
            config,
            flag: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`run`](Self::run) from anywhere.
    pub fn handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.local_addr()?,
        })
    }

    /// Serves until shutdown is requested, then drains workers and
    /// returns the number of connections served.
    pub fn run(self) -> io::Result<usize> {
        let shutdown = self.handle()?;
        let threads = self.config.effective_threads();
        let (sender, receiver): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let receiver = Arc::new(Mutex::new(receiver));

        let workers: Vec<thread::JoinHandle<()>> = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let service = Arc::clone(&self.service);
                let config = self.config.clone();
                let shutdown = shutdown.clone();
                thread::Builder::new()
                    .name(format!("poiesis-http-{i}"))
                    .spawn(move || loop {
                        let stream = match receiver.lock().expect("worker queue").recv() {
                            Ok(s) => s,
                            Err(_) => return, // sender dropped: shutdown
                        };
                        // a panicking handler must cost one connection, not
                        // one worker
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(stream, &service, &config, &shutdown)
                        }));
                    })
                    .expect("spawn worker")
            })
            .collect();

        let mut served = 0usize;
        for stream in self.listener.incoming() {
            if shutdown.is_shutting_down() {
                break;
            }
            match stream {
                Ok(stream) => {
                    served += 1;
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                // accept failures (EMFILE, ECONNABORTED) should not kill
                // the server; the brief pause keeps a *persistent* error
                // (fd exhaustion under flood) from busy-spinning this
                // thread while workers drain the backlog
                Err(_) => {
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }
        }
        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(served)
    }

    /// Convenience for tests and the load generator: consumes the server,
    /// runs it on a background thread, and returns `(addr, handle, join)`.
    pub fn spawn(
        self,
    ) -> io::Result<(
        SocketAddr,
        ShutdownHandle,
        thread::JoinHandle<io::Result<usize>>,
    )> {
        let addr = self.local_addr()?;
        let handle = self.handle()?;
        let join = thread::Builder::new()
            .name("poiesis-accept".to_string())
            .spawn(move || self.run())?;
        Ok((addr, handle, join))
    }
}

/// The keep-alive request loop for one connection.
fn serve_connection(
    stream: TcpStream,
    service: &PlanningService,
    config: &ServerConfig,
    shutdown: &ShutdownHandle,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, &config.limits) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(e) => {
                // report the failure if the socket still listens, then
                // hang up — a half-parsed stream cannot be resynchronized
                let _ = http::write_response(&mut writer, &http_error_response(&e), false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let response = dispatch(&request, service, shutdown);
        if http::write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if !keep_alive || shutdown.is_shutting_down() {
            return;
        }
    }
}

/// Routes the one server-level endpoint (`POST /shutdown`), everything
/// else goes to the service.
fn dispatch(request: &Request, service: &PlanningService, shutdown: &ShutdownHandle) -> Response {
    if request.path == "/shutdown" {
        return if request.method == "POST" {
            shutdown.shutdown();
            Response::json(200, "{\"shutting_down\":true}")
        } else {
            Response::json(
                405,
                error_body("method_not_allowed", "shutdown requires POST"),
            )
        };
    }
    service.handle(request)
}
