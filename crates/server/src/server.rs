//! The connection machinery: bind, accept, bounded queue, thread pool,
//! load shedding, shutdown.
//!
//! The accept loop hands each connection to a fixed pool of worker
//! threads (sized to [`std::thread::available_parallelism`] by default)
//! over a **bounded** channel of [`ServerConfig::queue`] slots. When
//! every worker is busy and the queue is full, the server *sheds*: the
//! connection is answered immediately with `503` + `Retry-After`
//! ([`ServerConfig::retry_after`]) and closed, and
//! `poiesis_http_shed_total` is incremented — bounded latency for the
//! clients already in, an honest machine-readable "come back later" for
//! the ones that are not, instead of an unbounded backlog that slowly
//! times everyone out. Shutdown is graceful and race-free: a
//! [`ShutdownHandle`] flips an atomic flag and wakes the (blocking)
//! accept call with a loopback connection; the accept loop then drops
//! the channel sender, the workers drain in-flight connections and exit,
//! and [`Server::run`] joins them all before returning. `POST /shutdown`
//! triggers the same path from the wire — which is how the CI smoke job
//! stops the binary cleanly.

use crate::http::{self, HttpError, Limits, Request, Response};
use crate::metrics::Metrics;
use crate::service::{error_body, http_error_response, PlanningService};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections. `0` means
    /// `available_parallelism`.
    pub threads: usize,
    /// Accepted connections that may wait for a free worker before the
    /// server starts shedding with `503`. `0` is a valid rendezvous
    /// queue: a connection is either handed to an idle worker on the
    /// spot or shed.
    pub queue: usize,
    /// The `Retry-After` a shed client is told to wait.
    pub retry_after: Duration,
    /// Per-request size bounds.
    pub limits: Limits,
    /// Socket read timeout — the cap on how long a slow or stalled peer
    /// can hold a worker mid-request.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 0,
            queue: 256,
            retry_after: Duration::from_secs(1),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
        }
    }
}

impl ServerConfig {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// Stops a running [`Server`] from another thread (or from the wire, via
/// `POST /shutdown`).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown and wakes the accept loop. Idempotent.
    pub fn shutdown(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        // the accept call is blocking; poke it awake so it observes the
        // flag. A wildcard bind (0.0.0.0 / [::]) is not connectable on
        // every platform — aim at the matching loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(wake);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    service: Arc<PlanningService>,
    config: ServerConfig,
    flag: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned test port).
    pub fn bind(addr: &str, service: PlanningService, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            service: Arc::new(service),
            config,
            flag: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop [`run`](Self::run) from anywhere.
    pub fn handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.flag),
            addr: self.local_addr()?,
        })
    }

    /// Serves until shutdown is requested, then drains workers and
    /// returns the number of connections served (shed connections are
    /// counted in `poiesis_http_shed_total`, not here).
    pub fn run(self) -> io::Result<usize> {
        let shutdown = self.handle()?;
        let threads = self.config.effective_threads();
        let metrics = Arc::clone(self.service.metrics());
        let (sender, receiver): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(self.config.queue);
        let receiver = Arc::new(Mutex::new(receiver));

        let workers: Vec<thread::JoinHandle<()>> = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let service = Arc::clone(&self.service);
                let config = self.config.clone();
                let shutdown = shutdown.clone();
                let metrics = Arc::clone(&metrics);
                thread::Builder::new()
                    .name(format!("poiesis-http-{i}"))
                    .spawn(move || loop {
                        let stream = match receiver.lock().expect("worker queue").recv() {
                            Ok(s) => s,
                            Err(_) => return, // sender dropped: shutdown
                        };
                        // a panicking handler must cost one connection, not
                        // one worker
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(stream, &service, &config, &shutdown, &metrics)
                        }));
                    })
                    .expect("spawn worker")
            })
            .collect();

        // shed responses are written off the accept thread: a hostile
        // peer can stall a shed write/drain for seconds, and the accept
        // loop must keep shedding at full speed exactly then. The shed
        // queue is bounded too — when even it is full the connection is
        // dropped silently (still counted), which only happens under a
        // flood that outruns one thread writing ~200-byte responses
        let (shed_sender, shed_receiver) = sync_channel::<TcpStream>(64);
        let shedder = {
            let config = self.config.clone();
            thread::Builder::new()
                .name("poiesis-shed".to_string())
                .spawn(move || {
                    while let Ok(stream) = shed_receiver.recv() {
                        shed(stream, &config);
                    }
                })
                .expect("spawn shedder")
        };

        let mut served = 0usize;
        for stream in self.listener.incoming() {
            if shutdown.is_shutting_down() {
                break;
            }
            match stream {
                Ok(stream) => match sender.try_send(stream) {
                    Ok(()) => served += 1,
                    // workers busy and queue full: shed instead of
                    // building an unbounded backlog
                    Err(TrySendError::Full(stream)) => {
                        metrics.record_shed();
                        let _ = shed_sender.try_send(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                },
                // accept failures (EMFILE, ECONNABORTED) should not kill
                // the server; the brief pause keeps a *persistent* error
                // (fd exhaustion under flood) from busy-spinning this
                // thread while workers drain the backlog
                Err(_) => {
                    thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }
        }
        drop(sender);
        drop(shed_sender);
        for worker in workers {
            let _ = worker.join();
        }
        let _ = shedder.join();
        Ok(served)
    }

    /// Convenience for tests and the load generator: consumes the server,
    /// runs it on a background thread, and returns `(addr, handle, join)`.
    pub fn spawn(
        self,
    ) -> io::Result<(
        SocketAddr,
        ShutdownHandle,
        thread::JoinHandle<io::Result<usize>>,
    )> {
        let addr = self.local_addr()?;
        let handle = self.handle()?;
        let join = thread::Builder::new()
            .name("poiesis-accept".to_string())
            .spawn(move || self.run())?;
        Ok((addr, handle, join))
    }
}

/// Refuses one connection with `503` + `Retry-After`. Runs on the
/// dedicated shedder thread, never the accept thread, because a hostile
/// peer can hold this for up to ~2 s (write timeout plus drain reads) —
/// tolerable for one background thread, fatal for the accept loop.
fn shed(stream: TcpStream, config: &ServerConfig) {
    use std::io::Read;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let retry_after = config.retry_after.as_secs().max(1);
    let response = Response::json(
        503,
        error_body(
            "overloaded",
            "all workers are busy and the accept queue is full; retry shortly",
        ),
    )
    .with_header("Retry-After", retry_after.to_string());
    let mut stream = stream;
    let _ = http::write_response(&mut stream, &response, false);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // drain (bounded) the request bytes the peer sent: closing with
    // unread data makes the kernel RST the connection, which can discard
    // the 503 before the peer reads it
    let mut sink = [0u8; 2048];
    for _ in 0..8 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => continue,
            _ => break,
        }
    }
}

/// The keep-alive request loop for one connection.
fn serve_connection(
    stream: TcpStream,
    service: &PlanningService,
    config: &ServerConfig,
    shutdown: &ShutdownHandle,
    metrics: &Metrics,
) {
    metrics.record_connection();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, &config.limits) {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(e) => {
                // report the failure if the socket still listens, then
                // hang up — a half-parsed stream cannot be resynchronized
                let response = http_error_response(&e);
                metrics.record_request("", "", response.status);
                let _ = http::write_response(&mut writer, &response, false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let response = {
            let _in_flight = metrics.in_flight_guard();
            dispatch(&request, service, shutdown)
        };
        metrics.record_request(&request.method, &request.path, response.status);
        if http::write_response(&mut writer, &response, keep_alive).is_err() {
            return;
        }
        if !keep_alive || shutdown.is_shutting_down() {
            return;
        }
    }
}

/// Routes the one server-level endpoint (`POST /shutdown`), everything
/// else goes to the service.
fn dispatch(request: &Request, service: &PlanningService, shutdown: &ShutdownHandle) -> Response {
    if request.path == "/shutdown" {
        return if request.method == "POST" {
            shutdown.shutdown();
            Response::json(200, "{\"shutting_down\":true}")
        } else {
            Response::json(
                405,
                error_body("method_not_allowed", "shutdown requires POST"),
            )
        };
    }
    service.handle(request)
}
