//! `poiesis-server` — POIESIS as a service: a dependency-free HTTP/1.1
//! JSON transport over the planning engine.
//!
//! The paper demonstrates quality-goal-driven ETL redesign as an
//! *interactive tool*; the ROADMAP's north star is the same capability
//! serving heavy traffic. The facade layer already did the hard part —
//! [`poiesis::SessionManager`] owns many concurrent sessions behind
//! opaque handles and speaks serializable `PlanRequest`/`PlanResponse`
//! DTOs — so this crate is deliberately *thin*: a hand-rolled, bounded
//! HTTP implementation ([`http`]), a pure routing layer ([`service`])
//! mapping REST-ish endpoints onto
//! `create`/`explore`/`select`/`history`/`close`, a thread-pool accept
//! loop with a bounded queue, `503` load shedding and graceful shutdown
//! ([`server`]), an atomic-counter metrics registry behind `GET /metrics`
//! ([`metrics`]), durable session snapshots behind `--state-dir`
//! ([`persist`]), and a std-only client ([`client`]) that tests and tools
//! drive real sockets with. No external dependencies, consistent with the
//! workspace's vendored-deps policy. Operational behaviour — the metric
//! catalogue, shedding semantics, recovery guarantees, capacity planning —
//! is documented in `docs/OPERATIONS.md`.
//!
//! The wire contract — endpoints, JSON schemas, error codes and status
//! mapping — is documented in `docs/API.md` and pinned by the integration
//! tests in `tests/integration.rs`.
//!
//! # Endpoints
//!
//! | Method & path | Maps to |
//! |---|---|
//! | `GET /healthz` | liveness + live-session count |
//! | `GET /metrics` | Prometheus-text [`Metrics`] scrape |
//! | `GET /sessions` | `SessionManager::ids` |
//! | `POST /sessions` | `SessionManager::create_from_request` |
//! | `POST /sessions/{id}/explore` | `SessionManager::explore` |
//! | `POST /sessions/{id}/select` | `SessionManager::select` |
//! | `POST /sessions/{id}/lint` | `SessionManager::lint` |
//! | `GET /sessions/{id}/history` | `SessionManager::history` |
//! | `DELETE /sessions/{id}` | `SessionManager::close` |
//! | `POST /shutdown` | graceful stop of the whole server |
//!
//! # In-process quickstart
//!
//! ```
//! use poiesis_server::{Client, PlanningService, Server, ServerConfig, SessionTemplate};
//!
//! let service = PlanningService::new(SessionTemplate::demo(80));
//! let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
//! let (addr, handle, join) = server.spawn().unwrap();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let id = client.create(None).unwrap();
//! let frontier = client.explore(id).unwrap();
//! assert!(!frontier.skyline.is_empty());
//! client.select(id, 0).unwrap();
//! client.close(id).unwrap();
//!
//! handle.shutdown();
//! join.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod clock;
pub mod http;
pub mod metrics;
pub mod persist;
pub mod server;
pub mod service;
pub mod template;

pub use client::{Client, ClientError, HttpResponse, RetryPolicy};
pub use clock::{Clock, SystemClock};
pub use http::{HttpError, Limits, Request, Response};
pub use metrics::Metrics;
pub use persist::{LoadedState, StateStore, TornWrite, TornWriteHook};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use service::{status_for, PlanningService};
pub use template::SessionTemplate;
