//! Property tests for the analyzer's core promise: any structural
//! mutation that breaks a known-valid flow is flagged with the expected
//! `PA0xx` diagnostic code — no silent acceptance of corrupted DAGs.

use analysis::{analyze, codes, Severity};
use datagen::fig2;
use etl_model::expr::Expr;
use etl_model::{Channel, OpKind};
use fcp::builtin::EncryptChannels;
use fcp::{ApplicationPoint, Pattern};
use proptest::prelude::*;

fn error_codes(flow: &etl_model::EtlFlow) -> Vec<&'static str> {
    analyze(flow)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

proptest! {
    /// Reversing any existing edge introduces a cycle, and the analyzer
    /// must say so (PA002) — whatever other damage the extra edge does.
    #[test]
    fn reversing_any_edge_is_flagged_as_a_cycle(pick in any::<prop::sample::Index>()) {
        let (mut flow, _) = fig2::purchases_flow();
        let edges: Vec<_> = flow.graph.edges().map(|e| (e.src, e.dst)).collect();
        let (src, dst) = edges[pick.index(edges.len())];
        flow.graph
            .add_edge(dst, src, Channel { label: String::new() })
            .unwrap();
        let codes_found = error_codes(&flow);
        prop_assert!(
            codes_found.contains(&codes::CYCLE),
            "back-edge {:?}->{:?} not flagged as a cycle; got {codes_found:?}",
            dst,
            src
        );
        prop_assert!(analysis::screen(&flow).is_some(), "screen missed the cycle");
    }

    /// Dropping any edge leaves a node without its input or output and
    /// must surface as a well-formedness error: a disconnected fragment
    /// (PA003), a source that is not an extract (PA004), a sink that is
    /// not a load (PA005), or an arity violation (PA006/PA007).
    #[test]
    fn dropping_any_edge_breaks_wellformedness(pick in any::<prop::sample::Index>()) {
        let (mut flow, _) = fig2::purchases_flow();
        let edge_ids: Vec<_> = flow.graph.edge_ids().collect();
        let victim = edge_ids[pick.index(edge_ids.len())];
        flow.graph.remove_edge(victim).unwrap();
        let expected = [
            codes::DISCONNECTED,
            codes::NON_EXTRACT_SOURCE,
            codes::NON_LOAD_SINK,
            codes::INPUT_ARITY,
            codes::OUTPUT_ARITY,
        ];
        let codes_found = error_codes(&flow);
        prop_assert!(
            codes_found.iter().any(|c| expected.contains(c)),
            "dropping edge {victim:?} produced no well-formedness error; got {codes_found:?}"
        );
    }

    /// Retargeting the filter's predicate at a column nothing upstream
    /// produces must be flagged as an unresolved reference (PA010).
    #[test]
    fn ghost_column_references_are_flagged(suffix in "[a-z]{1,8}") {
        let (mut flow, ids) = fig2::purchases_flow();
        let ghost = format!("zz_{suffix}"); // no fig2 column starts with zz_
        flow.graph.node_mut(ids.filter).unwrap().kind = OpKind::Filter {
            predicate: Expr::col(&ghost),
        };
        let codes_found = error_codes(&flow);
        prop_assert!(
            codes_found.contains(&codes::UNRESOLVED_COLUMN),
            "ghost column `{ghost}` not flagged; got {codes_found:?}"
        );
    }

    /// Marking any extract attribute sensitive either fires PA030 (the
    /// column reaches a load unprotected) or nothing at all (taint was
    /// aggregated/projected away) — never PA031 while unencrypted. Applying
    /// EncryptChannels then clears every PA030, downgrading each leak to an
    /// informational PA031 without inventing or losing any.
    #[test]
    fn encrypt_channels_clears_every_sensitive_leak(
        node_pick in any::<prop::sample::Index>(),
        attr_pick in any::<prop::sample::Index>(),
    ) {
        let (mut flow, _) = fig2::purchases_flow();
        let extracts: Vec<_> = flow
            .graph
            .node_ids()
            .filter(|&n| matches!(flow.op(n).unwrap().kind, OpKind::Extract { .. }))
            .collect();
        let victim = extracts[node_pick.index(extracts.len())];
        if let OpKind::Extract { schema, .. } = &mut flow.graph.node_mut(victim).unwrap().kind {
            let mut attrs = schema.attrs().to_vec();
            let i = attr_pick.index(attrs.len());
            attrs[i].sensitive = true;
            *schema = etl_model::Schema::new(attrs);
        }
        let plain = analyze(&flow);
        prop_assert!(
            plain.iter().all(|d| d.code != codes::SENSITIVE_EXPOSURE),
            "PA031 is reserved for encrypted flows"
        );
        let leaks: Vec<_> = plain
            .iter()
            .filter(|d| d.code == codes::SENSITIVE_LEAK)
            .collect();
        for leak in &leaks {
            prop_assert!(leak.severity == Severity::Warn, "a leak warns, never errors");
            prop_assert!(
                leak.notes.iter().any(|n| n.starts_with("lineage:")),
                "every PA030 carries its lineage trace; notes: {:?}",
                leak.notes
            );
        }
        let mut encrypted = flow.clone();
        EncryptChannels
            .apply(&mut encrypted, ApplicationPoint::Graph)
            .unwrap();
        let after = analyze(&encrypted);
        prop_assert!(
            after.iter().all(|d| d.code != codes::SENSITIVE_LEAK),
            "EncryptChannels must clear PA030"
        );
        let exposures = after
            .iter()
            .filter(|d| d.code == codes::SENSITIVE_EXPOSURE)
            .count();
        prop_assert!(
            exposures == leaks.len(),
            "each leak downgrades to exactly one PA031: {exposures} vs {}",
            leaks.len()
        );
    }
}

/// The columns the fig. 2 purchases flow carries into its loads must leak
/// when marked sensitive — the proptest above tolerates sanitized columns,
/// so this pins the positive case.
#[test]
fn carried_source_columns_do_leak() {
    let (mut flow, _) = fig2::purchases_flow();
    let extracts: Vec<_> = flow
        .graph
        .node_ids()
        .filter(|&n| matches!(flow.op(n).unwrap().kind, OpKind::Extract { .. }))
        .collect();
    if let OpKind::Extract { schema, .. } = &mut flow.graph.node_mut(extracts[0]).unwrap().kind {
        let mut attrs = schema.attrs().to_vec();
        let i = attrs
            .iter()
            .position(|a| a.name == "amount")
            .expect("fig2 sources carry `amount`");
        attrs[i].sensitive = true;
        *schema = etl_model::Schema::new(attrs);
    }
    let diags = analyze(&flow);
    assert!(
        diags.iter().any(|d| d.code == codes::SENSITIVE_LEAK),
        "`amount` reaches the loads, so PA030 must fire; got {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}

mod prune_equivalence {
    use super::*;
    use fcp::DeploymentPolicy;
    use poiesis::{Planner, PlannerConfig, PlannerOutcome, SearchStrategyKind};

    /// One small planning cycle over `flow`/`catalog` with the pruner
    /// toggled; retention off and one worker so the gate can activate and
    /// the outcome is deterministic.
    fn run(
        flow: &etl_model::EtlFlow,
        catalog: &datagen::Catalog,
        strategy: SearchStrategyKind,
        bound_prune: bool,
    ) -> PlannerOutcome {
        let config = PlannerConfig {
            policy: DeploymentPolicy::exhaustive(2),
            strategy,
            workers: 1,
            max_alternatives: 400,
            retain_dominated: false,
            bound_prune,
            ..PlannerConfig::default()
        };
        let registry = fcp::PatternRegistry::standard_for_catalog(catalog);
        Planner::new(flow.clone(), catalog.clone(), registry, config)
            .plan()
            .expect("planning cycle")
    }

    fn scored_skyline(out: &PlannerOutcome) -> Vec<(String, Vec<f64>)> {
        let mut v: Vec<_> = out
            .skyline
            .iter()
            .map(|&i| {
                (
                    out.alternatives[i].name.clone(),
                    out.alternatives[i].scores.clone(),
                )
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Dominance pre-pruning is a pure optimisation: on every workload
        /// × strategy cell the frontier (names *and* scores) is
        /// bit-identical with the pruner on or off. Steering strategies
        /// hold the pruner off via the gate, so equality there is trivial
        /// but still worth pinning.
        #[test]
        fn bound_pruning_never_changes_a_skyline(
            workload in 0usize..3,
            strategy_pick in 0usize..3,
        ) {
            let dirt = datagen::DirtProfile::demo();
            let (flow, catalog) = match workload {
                0 => {
                    let (flow, _) = fig2::purchases_flow();
                    (flow, fig2::purchases_catalog(20, &dirt, 3))
                }
                1 => {
                    let (flow, _) = datagen::tpch::tpch_flow();
                    (flow, datagen::tpch::tpch_catalog(20, &dirt, 3))
                }
                _ => {
                    let (flow, _) = datagen::tpcds::tpcds_flow();
                    (flow, datagen::tpcds::tpcds_catalog(20, &dirt, 3))
                }
            };
            let strategy = match strategy_pick {
                0 => SearchStrategyKind::Exhaustive,
                1 => SearchStrategyKind::Beam { width: 8 },
                _ => SearchStrategyKind::GreedyHillClimb,
            };
            let pruned = run(&flow, &catalog, strategy, true);
            let full = run(&flow, &catalog, strategy, false);
            prop_assert!(full.bound_pruned == 0, "pruner off must prune nothing");
            if strategy != SearchStrategyKind::Exhaustive {
                prop_assert!(pruned.bound_pruned == 0, "steering gate must hold");
            }
            prop_assert_eq!(scored_skyline(&pruned), scored_skyline(&full));
        }
    }
}
