//! Property tests for the analyzer's core promise: any structural
//! mutation that breaks a known-valid flow is flagged with the expected
//! `PA0xx` diagnostic code — no silent acceptance of corrupted DAGs.

use analysis::{analyze, codes, Severity};
use datagen::fig2;
use etl_model::expr::Expr;
use etl_model::{Channel, OpKind};
use proptest::prelude::*;

fn error_codes(flow: &etl_model::EtlFlow) -> Vec<&'static str> {
    analyze(flow)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

proptest! {
    /// Reversing any existing edge introduces a cycle, and the analyzer
    /// must say so (PA002) — whatever other damage the extra edge does.
    #[test]
    fn reversing_any_edge_is_flagged_as_a_cycle(pick in any::<prop::sample::Index>()) {
        let (mut flow, _) = fig2::purchases_flow();
        let edges: Vec<_> = flow.graph.edges().map(|e| (e.src, e.dst)).collect();
        let (src, dst) = edges[pick.index(edges.len())];
        flow.graph
            .add_edge(dst, src, Channel { label: String::new() })
            .unwrap();
        let codes_found = error_codes(&flow);
        prop_assert!(
            codes_found.contains(&codes::CYCLE),
            "back-edge {:?}->{:?} not flagged as a cycle; got {codes_found:?}",
            dst,
            src
        );
        prop_assert!(analysis::screen(&flow).is_some(), "screen missed the cycle");
    }

    /// Dropping any edge leaves a node without its input or output and
    /// must surface as a well-formedness error: a disconnected fragment
    /// (PA003), a source that is not an extract (PA004), a sink that is
    /// not a load (PA005), or an arity violation (PA006/PA007).
    #[test]
    fn dropping_any_edge_breaks_wellformedness(pick in any::<prop::sample::Index>()) {
        let (mut flow, _) = fig2::purchases_flow();
        let edge_ids: Vec<_> = flow.graph.edge_ids().collect();
        let victim = edge_ids[pick.index(edge_ids.len())];
        flow.graph.remove_edge(victim).unwrap();
        let expected = [
            codes::DISCONNECTED,
            codes::NON_EXTRACT_SOURCE,
            codes::NON_LOAD_SINK,
            codes::INPUT_ARITY,
            codes::OUTPUT_ARITY,
        ];
        let codes_found = error_codes(&flow);
        prop_assert!(
            codes_found.iter().any(|c| expected.contains(c)),
            "dropping edge {victim:?} produced no well-formedness error; got {codes_found:?}"
        );
    }

    /// Retargeting the filter's predicate at a column nothing upstream
    /// produces must be flagged as an unresolved reference (PA010).
    #[test]
    fn ghost_column_references_are_flagged(suffix in "[a-z]{1,8}") {
        let (mut flow, ids) = fig2::purchases_flow();
        let ghost = format!("zz_{suffix}"); // no fig2 column starts with zz_
        flow.graph.node_mut(ids.filter).unwrap().kind = OpKind::Filter {
            predicate: Expr::col(&ghost),
        };
        let codes_found = error_codes(&flow);
        prop_assert!(
            codes_found.contains(&codes::UNRESOLVED_COLUMN),
            "ghost column `{ghost}` not flagged; got {codes_found:?}"
        );
    }
}
