//! Attribute-level lineage and the sensitive-data taint pass.
//!
//! Lineage answers "where does this column come from?": every output column
//! of every operation is mapped back to the extract columns it originates
//! from, through joins (including the `r_` rename scheme), derives,
//! aggregations and merges. The taint pass walks the same mapping forward
//! from source columns marked [`etl_model::Attribute::sensitive`] and emits
//! `PA03x`/`PA04x` diagnostics when tainted data reaches a load without
//! crossing an encryption boundary, each carrying a rustc-style lineage
//! trace in its notes.
//!
//! Both passes mirror [`etl_model::propagate_schemas`] exactly — one column
//! mapping function (`column_mappings`) drives both, so lineage can never
//! disagree with the schema semantics.

use crate::{codes, Diagnostic, Location};
use etl_model::{EtlFlow, NodeId, OpKind, Schema, SchemaTable};
use std::collections::{BTreeMap, BTreeSet};

/// One originating source column: an attribute of an extract's schema.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceColumn {
    /// The extract node that introduces the column.
    pub node: NodeId,
    /// The attribute name at the extract.
    pub column: String,
}

/// How an output column relates to the input columns it maps from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapKind {
    /// The value passes through (possibly renamed): copies carry taint.
    Copy,
    /// The value is computed from the inputs (derive): carries taint.
    Derived,
    /// The value is an aggregate over the inputs (sum/count/…): provenance
    /// is kept for lineage, but taint is considered sanitized.
    Aggregated,
}

/// One output column with the `(input index, input column)` pairs it maps
/// from and how.
type ColumnMapping = (String, Vec<(usize, String)>, MapKind);

/// For one operation: each output column with the inputs it maps from and
/// how. Extract columns map from nothing — they are the lineage roots.
fn column_mappings(kind: &OpKind, inputs: &[&Schema]) -> Vec<ColumnMapping> {
    let copy_all = |i: usize| -> Vec<ColumnMapping> {
        inputs
            .get(i)
            .map(|s| {
                s.attrs()
                    .iter()
                    .map(|a| (a.name.clone(), vec![(i, a.name.clone())], MapKind::Copy))
                    .collect()
            })
            .unwrap_or_default()
    };
    match kind {
        OpKind::Extract { schema, .. } => schema
            .attrs()
            .iter()
            .map(|a| (a.name.clone(), Vec::new(), MapKind::Copy))
            .collect(),
        OpKind::Load { .. }
        | OpKind::Filter { .. }
        | OpKind::Router { .. }
        | OpKind::Sort { .. }
        | OpKind::Dedup { .. }
        | OpKind::FilterNulls { .. }
        | OpKind::Crosscheck { .. }
        | OpKind::Split
        | OpKind::Partition
        | OpKind::Checkpoint { .. }
        | OpKind::Encrypt
        | OpKind::Convert { .. } => copy_all(0),
        OpKind::Merge => {
            // Merge inputs share attribute names (same_shape), so each output
            // column unions the same-named column of every input.
            inputs
                .first()
                .map(|s| {
                    s.attrs()
                        .iter()
                        .map(|a| {
                            (
                                a.name.clone(),
                                (0..inputs.len()).map(|i| (i, a.name.clone())).collect(),
                                MapKind::Copy,
                            )
                        })
                        .collect()
                })
                .unwrap_or_default()
        }
        OpKind::Project { keep } => keep
            .iter()
            .map(|k| (k.clone(), vec![(0, k.clone())], MapKind::Copy))
            .collect(),
        OpKind::Derive { outputs } => {
            let mut out = copy_all(0);
            for (name, expr) in outputs {
                out.push((
                    name.clone(),
                    expr.columns()
                        .into_iter()
                        .map(|c| (0, c.to_string()))
                        .collect(),
                    MapKind::Derived,
                ));
            }
            out
        }
        OpKind::Join { .. } => {
            // Mirror `Schema::join_concat(right, "r")`: clashing right names
            // get an `r_` prefix, then trailing underscores until unique.
            let mut out = copy_all(0);
            let (Some(left), Some(right)) = (inputs.first(), inputs.get(1)) else {
                return out;
            };
            let mut names: Vec<String> = left.attrs().iter().map(|a| a.name.clone()).collect();
            for a in right.attrs() {
                let mut name = if left.contains(&a.name) {
                    format!("r_{}", a.name)
                } else {
                    a.name.clone()
                };
                while names.iter().any(|n| n == &name) {
                    name.push('_');
                }
                names.push(name.clone());
                out.push((name, vec![(1, a.name.clone())], MapKind::Copy));
            }
            out
        }
        OpKind::Aggregate { group_by, aggs } => {
            let mut out: Vec<_> = group_by
                .iter()
                .map(|g| (g.clone(), vec![(0, g.clone())], MapKind::Copy))
                .collect();
            for (name, _, input) in aggs {
                out.push((name.clone(), vec![(0, input.clone())], MapKind::Aggregated));
            }
            out
        }
    }
}

/// Set of originating source columns per output column of one node.
pub type ColumnOrigins = BTreeMap<String, BTreeSet<SourceColumn>>;

/// The attribute-level lineage of a flow: for every operation, every output
/// column mapped to the extract columns it originates from. Aggregations
/// keep provenance (a `SUM(amount)` originates from `amount`); the taint
/// pass — not lineage — is where aggregation sanitizes.
#[derive(Debug)]
pub struct Lineage {
    per_node: Vec<Option<ColumnOrigins>>,
}

impl Lineage {
    /// Builds the lineage table over an already-propagated schema table
    /// (predecessor schemas feed the join/merge column mapping). Returns
    /// `None` when the flow is cyclic — schemas cannot have propagated
    /// either, and well-formedness owns that finding.
    pub fn build(flow: &EtlFlow, schemas: &SchemaTable) -> Option<Lineage> {
        let order = flow.topo_order().ok()?;
        let mut per_node: Vec<Option<ColumnOrigins>> = vec![None; flow.graph.node_bound()];
        for n in order {
            let op = flow.op(n)?;
            let preds: Vec<NodeId> = flow.graph.predecessors(n).collect();
            let inputs: Vec<&Schema> = preds
                .iter()
                .filter_map(|p| schemas.get(p.index())?.as_deref())
                .collect();
            if inputs.len() != preds.len() {
                return None; // schema table does not cover the flow
            }
            let mut origins: ColumnOrigins = BTreeMap::new();
            for (out_col, maps, _) in column_mappings(&op.kind, &inputs) {
                let entry = origins.entry(out_col.clone()).or_default();
                if maps.is_empty() {
                    entry.insert(SourceColumn {
                        node: n,
                        column: out_col,
                    });
                } else {
                    for (i, in_col) in maps {
                        if let Some(Some(pred)) = preds.get(i).map(|p| per_node[p.index()].as_ref())
                        {
                            if let Some(srcs) = pred.get(&in_col) {
                                entry.extend(srcs.iter().cloned());
                            }
                        }
                    }
                }
            }
            per_node[n.index()] = Some(origins);
        }
        Some(Lineage { per_node })
    }

    /// The source columns one output column of `node` originates from.
    /// Empty when the node or column is unknown.
    pub fn origins(&self, node: NodeId, column: &str) -> impl Iterator<Item = &SourceColumn> {
        self.per_node
            .get(node.index())
            .and_then(|o| o.as_ref())
            .and_then(|o| o.get(column))
            .into_iter()
            .flatten()
    }

    /// Every output column of `node` with its origin set.
    pub fn columns(&self, node: NodeId) -> impl Iterator<Item = (&str, &BTreeSet<SourceColumn>)> {
        self.per_node
            .get(node.index())
            .and_then(|o| o.as_ref())
            .into_iter()
            .flat_map(|o| o.iter().map(|(c, s)| (c.as_str(), s)))
    }
}

/// Taint state of one (column, origin) pair at one node.
#[derive(Debug, Clone)]
struct TaintEntry {
    /// Crossed an in-flow `ENCRYPT` operation on the way here.
    protected: bool,
    /// The `(node, column)` this taint arrived from — `None` at the source.
    parent: Option<(NodeId, String)>,
}

/// column → origin → state, per node.
type NodeTaint = BTreeMap<String, BTreeMap<SourceColumn, TaintEntry>>;

/// The sensitive-data taint pass (PA030/PA031/PA040/PA041).
///
/// Columns marked [`etl_model::Attribute::sensitive`] on extract schemata
/// are tracked through the lineage mapping. Aggregation sanitizes (a sum
/// over a sensitive column is not itself sensitive); an in-flow `ENCRYPT`
/// operation or the graph-wide `encrypted` configuration protects. A
/// sensitive column reaching a load unprotected is PA030 (warn, with the
/// full lineage trace in notes); reaching it protected is PA031 (info).
/// Redundant in-flow encryption under an encrypted graph is PA040;
/// encryption configured with nothing sensitive to protect is PA041.
pub fn taint(flow: &EtlFlow, schemas: &SchemaTable) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Ok(order) = flow.topo_order() else {
        return out;
    };
    let mut per_node: Vec<Option<NodeTaint>> = vec![None; flow.graph.node_bound()];
    let mut sensitive_sources = 0usize;
    for n in order {
        let Some(op) = flow.op(n) else { continue };
        let preds: Vec<NodeId> = flow.graph.predecessors(n).collect();
        let inputs: Vec<&Schema> = preds
            .iter()
            .filter_map(|p| schemas.get(p.index())?.as_deref())
            .collect();
        if inputs.len() != preds.len() {
            return out;
        }
        let mut taints: NodeTaint = BTreeMap::new();
        for (out_col, maps, kind) in column_mappings(&op.kind, &inputs) {
            if maps.is_empty() {
                // Lineage root: an extract attribute.
                if let OpKind::Extract { schema, .. } = &op.kind {
                    if schema.attr(&out_col).is_some_and(|a| a.sensitive) {
                        sensitive_sources += 1;
                        taints.entry(out_col.clone()).or_default().insert(
                            SourceColumn {
                                node: n,
                                column: out_col,
                            },
                            TaintEntry {
                                protected: false,
                                parent: None,
                            },
                        );
                    }
                }
                continue;
            }
            if kind == MapKind::Aggregated {
                continue; // aggregation sanitizes
            }
            for (i, in_col) in maps {
                let Some(Some(pred_taint)) = preds.get(i).map(|p| per_node[p.index()].as_ref())
                else {
                    continue;
                };
                let Some(incoming) = pred_taint.get(&in_col) else {
                    continue;
                };
                let entry = taints.entry(out_col.clone()).or_default();
                for (origin, state) in incoming {
                    let protected = state.protected || matches!(op.kind, OpKind::Encrypt);
                    entry
                        .entry(origin.clone())
                        .and_modify(|e| {
                            // An unprotected path dominates a protected one.
                            if !protected {
                                e.protected = false;
                                e.parent = Some((preds[i], in_col.clone()));
                            }
                        })
                        .or_insert(TaintEntry {
                            protected,
                            parent: Some((preds[i], in_col.clone())),
                        });
                }
            }
        }
        if matches!(op.kind, OpKind::Load { .. }) {
            for (col, origins) in &taints {
                for (origin, state) in origins {
                    out.push(leak_diagnostic(flow, &per_node, n, col, origin, state));
                }
            }
        }
        per_node[n.index()] = Some(taints);
    }
    // Flow-level encryption hygiene.
    if flow.config.encrypted {
        for (n, op) in flow.graph.nodes() {
            if matches!(op.kind, OpKind::Encrypt) {
                out.push(
                    Diagnostic::warn(
                        codes::REDUNDANT_ENCRYPTION,
                        Location::Node(n),
                        format!(
                            "in-flow encryption `{}` is redundant: every channel is \
                             already encrypted by the flow configuration",
                            op.name
                        ),
                    )
                    .with_suggestion(
                        "remove the ENCRYPT operation or drop the flow-wide encryption",
                    ),
                );
            }
        }
        if sensitive_sources == 0 {
            out.push(
                Diagnostic::info(
                    codes::UNUSED_ENCRYPTION,
                    Location::Graph,
                    "flow channels are encrypted but no source column is marked sensitive",
                )
                .with_suggestion(
                    "mark the attributes that need protection as sensitive, or reconsider \
                     the encryption performance tax",
                ),
            );
        }
    }
    out
}

/// Builds the PA030/PA031 diagnostic for one tainted column arriving at a
/// load, with the origin note and full hop-by-hop lineage trace.
fn leak_diagnostic(
    flow: &EtlFlow,
    per_node: &[Option<NodeTaint>],
    load: NodeId,
    column: &str,
    origin: &SourceColumn,
    state: &TaintEntry,
) -> Diagnostic {
    let name_of = |n: NodeId| {
        flow.op(n)
            .map(|o| o.name.clone())
            .unwrap_or_else(|| n.to_string())
    };
    let load_name = name_of(load);
    let source_name = name_of(origin.node);
    // Walk parent pointers back to the origin, then reverse into a trace.
    let mut hops: Vec<(NodeId, String)> = vec![(load, column.to_string())];
    let mut cursor = state.parent.clone();
    while let Some((n, col)) = cursor {
        hops.push((n, col.clone()));
        cursor = per_node
            .get(n.index())
            .and_then(|t| t.as_ref())
            .and_then(|t| t.get(&col))
            .and_then(|origins| origins.get(origin))
            .and_then(|e| e.parent.clone());
    }
    hops.reverse();
    let trace = hops
        .iter()
        .enumerate()
        .map(|(i, (n, col))| {
            let prev = i.checked_sub(1).map(|j| &hops[j].1);
            if i == 0 || i + 1 == hops.len() || prev != Some(col) {
                format!("`{}`.`{col}`", name_of(*n))
            } else {
                format!("`{}`", name_of(*n))
            }
        })
        .collect::<Vec<_>>()
        .join(" → ");
    let protected = state.protected || flow.config.encrypted;
    let d = if protected {
        let how = if state.protected {
            "in-flow encryption"
        } else {
            "the encrypted-channels configuration"
        };
        Diagnostic::info(
            codes::SENSITIVE_EXPOSURE,
            Location::Node(load),
            format!(
                "sensitive column `{}` from `{source_name}` reaches load \
                 `{load_name}` as `{column}`, protected by {how}",
                origin.column
            ),
        )
    } else {
        Diagnostic::warn(
            codes::SENSITIVE_LEAK,
            Location::Node(load),
            format!(
                "sensitive column `{}` from `{source_name}` reaches load \
                 `{load_name}` as `{column}` over unencrypted channels",
                origin.column
            ),
        )
        .with_suggestion(
            "apply the EncryptChannels pattern, insert an ENCRYPT before the load, \
             or aggregate the column away",
        )
    };
    d.with_note(format!(
        "`{}` is marked sensitive at `{source_name}`",
        origin.column
    ))
    .with_note(format!("lineage: {trace}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{codes, has_errors, Severity};
    use etl_model::expr::Expr;
    use etl_model::{propagate_schemas, AggFunc, Attribute, DataType, Operation};

    fn sensitive_schema() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::required("card", DataType::Str).mark_sensitive(),
            Attribute::new("amount", DataType::Float),
        ])
    }

    /// extract(card sensitive) → filter → load, nothing encrypted.
    fn leaking_flow() -> EtlFlow {
        let mut f = EtlFlow::new("leaky");
        let a = f.add_op(Operation::extract("purchases", sensitive_schema()));
        let b = f.add_op(Operation::filter("F", Expr::col("id").gt(Expr::lit_i(0))));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        f
    }

    fn taint_of(flow: &EtlFlow) -> Vec<Diagnostic> {
        let schemas = propagate_schemas(flow).unwrap();
        taint(flow, &schemas)
    }

    #[test]
    fn lineage_follows_copies_and_join_renames() {
        let mut f = EtlFlow::new("j");
        let l = f.add_op(Operation::extract("orders", sensitive_schema()));
        let r = f.add_op(Operation::extract(
            "refs",
            Schema::new(vec![
                Attribute::required("id", DataType::Int),
                Attribute::new("rate", DataType::Float),
            ]),
        ));
        let j = f.add_op(Operation::new(
            "JOIN on id",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        ));
        let load = f.add_op(Operation::load("dw"));
        f.connect(l, j).unwrap();
        f.connect(r, j).unwrap();
        f.connect(j, load).unwrap();
        let schemas = propagate_schemas(&f).unwrap();
        let lin = Lineage::build(&f, &schemas).unwrap();
        // `card` at the load traces to the left extract.
        let origins: Vec<_> = lin.origins(load, "card").collect();
        assert_eq!(
            origins,
            vec![&SourceColumn {
                node: l,
                column: "card".into()
            }]
        );
        // the clashing right `id` was renamed `r_id` and traces right.
        let origins: Vec<_> = lin.origins(load, "r_id").collect();
        assert_eq!(
            origins,
            vec![&SourceColumn {
                node: r,
                column: "id".into()
            }]
        );
    }

    #[test]
    fn unprotected_sensitive_column_leaks_pa030_with_trace() {
        let f = leaking_flow();
        let diags = taint_of(&f);
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.code, codes::SENSITIVE_LEAK);
        assert_eq!(d.severity, Severity::Warn, "leaks must not gate sessions");
        assert!(d.message.contains("`card`"));
        assert_eq!(d.notes.len(), 2);
        assert!(d.notes[0].contains("marked sensitive at `EXTRACT purchases`"));
        assert_eq!(
            d.notes[1],
            "lineage: `EXTRACT purchases`.`card` → `F` → `LOAD dw`.`card`"
        );
        assert!(d.suggestion.as_deref().unwrap().contains("EncryptChannels"));
        // a full analyze carries the finding and stays sessionable
        let all = crate::analyze(&f);
        assert!(all.iter().any(|d| d.code == codes::SENSITIVE_LEAK));
        assert!(!has_errors(&all));
    }

    #[test]
    fn encrypted_config_downgrades_to_pa031() {
        let mut f = leaking_flow();
        f.config.encrypted = true;
        let diags = taint_of(&f);
        let codes_seen: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::SENSITIVE_EXPOSURE));
        assert!(!codes_seen.contains(&codes::SENSITIVE_LEAK));
        assert!(!codes_seen.contains(&codes::UNUSED_ENCRYPTION));
    }

    #[test]
    fn in_flow_encrypt_protects_downstream() {
        let mut f = EtlFlow::new("enc");
        let a = f.add_op(Operation::extract("purchases", sensitive_schema()));
        let e = f.add_op(Operation::new("ENCRYPT pii", OpKind::Encrypt));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, e).unwrap();
        f.connect(e, c).unwrap();
        let diags = taint_of(&f);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SENSITIVE_EXPOSURE);
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn aggregation_sanitizes_but_group_by_does_not() {
        let mut f = EtlFlow::new("agg");
        let a = f.add_op(Operation::extract("purchases", sensitive_schema()));
        let g = f.add_op(Operation::new(
            "GROUP BY id",
            OpKind::Aggregate {
                group_by: vec!["id".into()],
                aggs: vec![("spent".into(), AggFunc::Sum, "amount".into())],
            },
        ));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, g).unwrap();
        f.connect(g, c).unwrap();
        // `card` is aggregated away entirely; nothing sensitive survives.
        assert!(taint_of(&f).is_empty());

        // but grouping BY the sensitive column carries it through
        let mut f2 = EtlFlow::new("agg2");
        let a2 = f2.add_op(Operation::extract("purchases", sensitive_schema()));
        let g2 = f2.add_op(Operation::new(
            "GROUP BY card",
            OpKind::Aggregate {
                group_by: vec!["card".into()],
                aggs: vec![("spent".into(), AggFunc::Sum, "amount".into())],
            },
        ));
        let c2 = f2.add_op(Operation::load("dw"));
        f2.connect(a2, g2).unwrap();
        f2.connect(g2, c2).unwrap();
        let diags = taint_of(&f2);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::SENSITIVE_LEAK);
    }

    #[test]
    fn projecting_the_column_away_clears_the_taint() {
        let mut f = EtlFlow::new("proj");
        let a = f.add_op(Operation::extract("purchases", sensitive_schema()));
        let p = f.add_op(Operation::project(
            "keep ids",
            vec!["id".into(), "amount".into()],
        ));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, p).unwrap();
        f.connect(p, c).unwrap();
        assert!(taint_of(&f).is_empty());
    }

    #[test]
    fn encryption_hygiene_pa040_pa041() {
        // encrypted config + in-flow ENCRYPT = redundant (PA040)
        let mut f = EtlFlow::new("redundant");
        let a = f.add_op(Operation::extract("purchases", sensitive_schema()));
        let e = f.add_op(Operation::new("ENCRYPT pii", OpKind::Encrypt));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, e).unwrap();
        f.connect(e, c).unwrap();
        f.config.encrypted = true;
        let diags = taint_of(&f);
        assert!(diags.iter().any(|d| d.code == codes::REDUNDANT_ENCRYPTION));
        assert!(!diags.iter().any(|d| d.code == codes::UNUSED_ENCRYPTION));

        // encrypted config + nothing sensitive = unused (PA041)
        let mut g = EtlFlow::new("unused");
        let a = g.add_op(Operation::extract(
            "plain",
            Schema::new(vec![Attribute::required("id", DataType::Int)]),
        ));
        let c = g.add_op(Operation::load("dw"));
        g.connect(a, c).unwrap();
        g.config.encrypted = true;
        let diags = taint_of(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::UNUSED_ENCRYPTION);
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn rendered_leak_shows_note_lines() {
        let f = leaking_flow();
        let diags = crate::analyze(&f);
        let text = crate::render(&f, &diags);
        assert!(text.contains("warn[PA030]"), "{text}");
        assert!(text.contains("  = note: lineage: "), "{text}");
        assert!(text.contains("  = help: "), "{text}");
    }
}
