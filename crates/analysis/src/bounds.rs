//! Static measure-bound analysis: a sound optimistic ceiling on what a
//! pattern combination can achieve, computed *without* applying it.
//!
//! Each pattern declares a [`GainProfile`] — per-characteristic caps on the
//! multiplier it can put on a characteristic score in a single application.
//! A combination's profile is the per-axis product of its members' profiles
//! (clamped at [`quality::RATIO_CLAMP_MAX`], the ceiling the score
//! computation itself enforces). Since every baseline characteristic score
//! is 100, the optimistic *score* bound per axis is simply `100 × cap`.
//!
//! Soundness: for every combination `C` and every characteristic `c`,
//! `score_c(apply(C, flow)) ≤ 100 × combination_gain(C).cap(c)` under the
//! estimate evaluation mode. The planner uses this to skip combinations
//! whose best possible outcome is already dominated by the current skyline
//! — pruned combinations provably cannot change the skyline, so the result
//! set stays bit-identical.

use fcp::Pattern;
use quality::{Characteristic, GainProfile};
use std::sync::Arc;

/// Folds the gain profiles of a pattern combination into one profile via
/// [`GainProfile::combine`], starting from the identity
/// ([`GainProfile::neutral`]). The empty combination therefore bounds every
/// axis at the baseline (cap 1.0).
pub fn combination_gain<'a, I>(patterns: I) -> GainProfile
where
    I: IntoIterator<Item = &'a Arc<dyn Pattern>>,
{
    patterns.into_iter().fold(GainProfile::neutral(), |acc, p| {
        acc.combine(&p.gain_profile())
    })
}

/// The optimistic characteristic-score bound implied by a profile: `100 ×
/// cap` per axis, in [`Characteristic::ALL`] order. This is the best score
/// any flow rewritten by the combination can reach, given baseline scores
/// of 100 and ratio clamping.
pub fn optimistic_scores(gain: &GainProfile) -> [f64; Characteristic::ALL.len()] {
    let mut out = [0.0; Characteristic::ALL.len()];
    for (i, c) in Characteristic::ALL.iter().enumerate() {
        out[i] = 100.0 * gain.cap(*c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcp::PatternRegistry;
    use quality::RATIO_CLAMP_MAX;

    fn registry() -> PatternRegistry {
        PatternRegistry::standard(vec![("pu_id".into(), "ref_purchases".into())])
    }

    #[test]
    fn empty_combination_is_baseline() {
        let g = combination_gain([]);
        for c in Characteristic::ALL {
            assert_eq!(g.cap(c), 1.0);
        }
        assert_eq!(optimistic_scores(&g), [100.0; 6]);
    }

    #[test]
    fn security_pair_cannot_move_other_axes() {
        let r = registry();
        let pair = [
            r.by_name("EncryptChannels").unwrap(),
            r.by_name("EnableAccessControl").unwrap(),
        ];
        let g = combination_gain(pair);
        assert_eq!(g.cap(Characteristic::Security), RATIO_CLAMP_MAX);
        for c in Characteristic::ALL {
            if c != Characteristic::Security {
                assert_eq!(g.cap(c), 1.0, "security pair must not claim gains on {c}");
            }
        }
        let scores = optimistic_scores(&g);
        assert_eq!(
            scores[Characteristic::ALL.len() - 1],
            100.0 * RATIO_CLAMP_MAX
        );
    }

    #[test]
    fn combination_bound_is_at_least_each_members() {
        // combine() multiplies caps ≥ 1, so a combination can never promise
        // less than any member alone — the monotonicity the pruner relies on.
        let r = registry();
        let all: Vec<_> = r.iter().collect();
        let combined = combination_gain(all.iter().copied());
        for p in r.iter() {
            let single = combination_gain([p]);
            for c in Characteristic::ALL {
                assert!(combined.cap(c) >= single.cap(c) - 1e-12);
            }
        }
    }

    #[test]
    fn bounds_are_sound_on_the_demo_flow() {
        // Apply each single-pattern combination to the Fig. 2 flow and check
        // the estimated characteristic scores never exceed the static bound.
        use datagen::fig2::{purchases_catalog, purchases_flow};
        use datagen::DirtProfile;
        use fcp::{ApplicationPoint, PatternContext};
        use quality::{estimate, source_stats, Characteristic};

        let (flow, _) = purchases_flow();
        let catalog = purchases_catalog(500, &DirtProfile::clean(), 3);
        let stats = source_stats(&catalog);
        let base = estimate(&flow, &stats);
        let r = registry();
        for p in r.iter() {
            let ctx = PatternContext::new(&flow).unwrap();
            let points: Vec<ApplicationPoint> = p.candidate_points(&ctx);
            drop(ctx);
            let Some(point) = points.first() else {
                continue;
            };
            let mut fork = flow.fork("bound-check");
            if p.apply(&mut fork, *point).is_err() {
                continue;
            }
            let after = estimate(&fork, &stats);
            let bound = optimistic_scores(&p.gain_profile());
            for (i, c) in Characteristic::ALL.iter().enumerate() {
                let score = after.characteristic_score(&base, *c);
                assert!(
                    score <= bound[i] + 1e-9,
                    "{}: measured {c} score {score} exceeds static bound {}",
                    p.name(),
                    bound[i]
                );
            }
        }
    }
}
