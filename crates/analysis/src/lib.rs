//! `poiesis-analysis` — static flow analysis for POIESIS.
//!
//! POIESIS evaluates thousands of pattern-modified ETL flow alternatives per
//! exploration cycle; an ill-formed flow (cycle, dangling edge, unresolved
//! column, type-broken predicate) that is only discovered *during* evaluation
//! wastes a full clone + simulate and surfaces as an opaque failure count.
//! This crate checks those properties by cheap static traversal *before*
//! evaluation, the same shape as a compile-time check in a training stack.
//!
//! The analyzer is a set of composable passes over [`etl_model::EtlFlow`],
//! each emitting structured [`Diagnostic`]s with stable `PA0xx` codes
//! (catalogued in [`codes`] and `docs/ANALYSIS.md`):
//!
//! * [`well_formedness`] — graph shape: emptiness, cycles, weakly-disconnected
//!   components, source/sink degree rules, operator arity, dangling channels;
//! * [`dataflow`] — field-level dataflow on top of
//!   [`etl_model::propagate_schemas`]: unresolved columns, duplicate
//!   attributes, merge shape mismatches, expression type problems, and dead
//!   fields never consumed by any downstream operation;
//! * [`check_application`] — pattern preconditions: validates an
//!   [`fcp::ApplicationPoint`] against a pattern's prerequisites before the
//!   planner clones the flow and applies the combination.
//!
//! [`analyze`] runs the flow passes and returns every finding;
//! [`screen`] is the cheap error-only gate the planner hot path uses;
//! [`render`] formats diagnostics rustc-style for the `poiesis_lint` CLI.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use etl_model::expr::{BinOp, Expr};
use etl_model::{
    propagate_schemas, DataType, EdgeId, EtlFlow, FlowError, NodeId, OpKind, Schema, SchemaError,
};
use fcp::{ApplicationPoint, Pattern, PatternContext};
use flowgraph::{has_cycle, reachable_from, topo_sort, weakly_connected_components};
use std::fmt;

pub mod bounds;
pub mod lineage;

pub use bounds::{combination_gain, optimistic_scores};
pub use lineage::{Lineage, SourceColumn};

/// Stable diagnostic codes. Codes are append-only: a published `PAxxx` never
/// changes meaning (wire compatibility for lint consumers and CI greps).
pub mod codes {
    /// Flow has no operations at all.
    pub const EMPTY_FLOW: &str = "PA001";
    /// Flow graph contains a directed cycle.
    pub const CYCLE: &str = "PA002";
    /// Flow splits into weakly-disconnected subgraphs.
    pub const DISCONNECTED: &str = "PA003";
    /// A non-extract operation has no inputs.
    pub const NON_EXTRACT_SOURCE: &str = "PA004";
    /// A non-load operation has no outputs.
    pub const NON_LOAD_SINK: &str = "PA005";
    /// Operation input count outside its kind's arity.
    pub const INPUT_ARITY: &str = "PA006";
    /// Operation output count outside its kind's arity.
    pub const OUTPUT_ARITY: &str = "PA007";
    /// Channel with a missing endpoint (internal corruption guard).
    pub const DANGLING_CHANNEL: &str = "PA008";
    /// Expression or projection references a column absent from its input.
    pub const UNRESOLVED_COLUMN: &str = "PA010";
    /// An operation would introduce a duplicate attribute name.
    pub const DUPLICATE_ATTRIBUTE: &str = "PA011";
    /// Merge inputs disagree on schema shape.
    pub const MERGE_MISMATCH: &str = "PA012";
    /// Expression type problem (non-boolean predicate, non-numeric arithmetic).
    pub const EXPR_TYPE: &str = "PA013";
    /// Field produced but never consumed by any downstream operation.
    pub const DEAD_FIELD: &str = "PA014";
    /// Pattern application point no longer exists in the flow.
    pub const DEAD_POINT: &str = "PA020";
    /// Pattern prerequisite unsatisfied at the application point.
    pub const PREREQUISITE: &str = "PA021";
    /// Sensitive source column reaches a load over unencrypted channels.
    pub const SENSITIVE_LEAK: &str = "PA030";
    /// Sensitive source column reaches a load, protected by encryption.
    pub const SENSITIVE_EXPOSURE: &str = "PA031";
    /// In-flow encryption under a flow-wide encrypted configuration.
    pub const REDUNDANT_ENCRYPTION: &str = "PA040";
    /// Flow-wide encryption with no sensitive source column to protect.
    pub const UNUSED_ENCRYPTION: &str = "PA041";
}

/// How bad a finding is. Ordered: `Error > Warn > Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never gates anything.
    Info,
    /// Suspicious but evaluable (dead fields, disconnected fragments).
    Warn,
    /// The flow cannot be evaluated or would produce wrong results.
    Error,
}

impl Severity {
    /// Lowercase name used in rendering and on the wire.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parse a name produced by [`Severity::name`].
    pub fn parse(s: &str) -> Option<Severity> {
        Some(match s {
            "info" => Severity::Info,
            "warn" => Severity::Warn,
            "error" => Severity::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where in the flow a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// The whole flow (emptiness, disconnection, graph-level patterns).
    Graph,
    /// One operation.
    Node(NodeId),
    /// One channel.
    Edge(EdgeId),
}

impl Location {
    /// Human-readable description against a flow (resolves operation names).
    pub fn describe(&self, flow: &EtlFlow) -> String {
        match self {
            Location::Graph => format!("flow `{}`", flow.name),
            Location::Node(n) => match flow.op(*n) {
                Some(op) => format!("node {n} (`{}`)", op.name),
                None => format!("node {n} (removed)"),
            },
            Location::Edge(e) => match flow.graph.endpoints(*e) {
                Some((s, d)) => {
                    let sn = flow.op(s).map(|o| o.name.as_str()).unwrap_or("?");
                    let dn = flow.op(d).map(|o| o.name.as_str()).unwrap_or("?");
                    format!("edge {e} (`{sn}` → `{dn}`)")
                }
                None => format!("edge {e} (removed)"),
            },
        }
    }
}

/// One finding from a static analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`] (`PA0xx`).
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Where it points.
    pub location: Location,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the analyzer can tell.
    pub suggestion: Option<String>,
    /// Supporting evidence lines (lineage traces, provenance), rendered as
    /// rustc-style `= note:` lines. Usually empty.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Error-severity diagnostic.
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
            suggestion: None,
            notes: Vec::new(),
        }
    }

    /// Warn-severity diagnostic.
    pub fn warn(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warn,
            ..Diagnostic::error(code, location, message)
        }
    }

    /// Info-severity diagnostic.
    pub fn info(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, location, message)
        }
    }

    /// Attaches a fix suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Appends one supporting note line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// True when any diagnostic is [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Runs every flow pass — [`well_formedness`], [`dataflow`] and the
/// sensitive-data [`lineage::taint`] pass — and returns all findings, errors
/// first within the original pass order.
pub fn analyze(flow: &EtlFlow) -> Vec<Diagnostic> {
    analyze_with(flow, None)
}

/// [`analyze`] over a schema table the caller already computed (the planner
/// and session builder carry one), avoiding a second [`propagate_schemas`]
/// over the same flow. Pass `None` to propagate internally.
pub fn analyze_with(flow: &EtlFlow, schemas: Option<&etl_model::SchemaTable>) -> Vec<Diagnostic> {
    let mut out = well_formedness(flow);
    if flow.graph.node_count() > 0 && !has_cycle(&flow.graph) {
        let owned;
        let table = match schemas {
            Some(t) => Some(t),
            None => match propagate_schemas(flow) {
                Ok(t) => {
                    owned = t;
                    Some(&owned)
                }
                Err(e) => {
                    out.push(schema_error_diagnostic(flow, &e));
                    None
                }
            },
        };
        if let Some(table) = table {
            out.extend(dataflow_with(flow, table));
            out.extend(lineage::taint(flow, table));
        }
    }
    // Stable sort: errors surface first, ties keep pass order.
    out.sort_by_key(|d| std::cmp::Reverse(d.severity));
    out
}

/// The cheap error-only gate used on the planner hot path: returns the first
/// blocking problem, or `None` when the flow is evaluable. Delegates to
/// [`EtlFlow::validate`] (graph shape + schema propagation) and maps the
/// failure onto a diagnostic, so it costs one validation, not a full
/// multi-pass analysis.
pub fn screen(flow: &EtlFlow) -> Option<Diagnostic> {
    flow.validate().err().map(|e| from_flow_error(flow, &e))
}

/// [`screen`] for callers that already carry a valid schema table for the
/// flow: schema propagation is proven, so only the structural half of
/// validation runs ([`EtlFlow::validate_structure`]).
pub fn screen_with(flow: &EtlFlow, schemas: Option<&etl_model::SchemaTable>) -> Option<Diagnostic> {
    match schemas {
        None => screen(flow),
        Some(_) => flow
            .validate_structure()
            .err()
            .map(|e| from_flow_error(flow, &e)),
    }
}

/// Incremental variant of [`screen`] for a copy-on-write fork of an
/// already-screened base flow: checks only what the fork's patch can have
/// changed, in `O(affected region)` instead of `O(flow)`.
///
/// * `base_schemas` — the base flow's schema table ([`propagate_schemas`]);
/// * `delta` — the fork's divergence from the base ([`EtlFlow::delta_since`]).
///
/// **Precondition:** `screen(base)` returned `None`. Under it, this accepts a
/// fork if and only if `screen(fork)` would: degree and kind can change only
/// at touched nodes (any adjacency edit unshares the slot), a patch-created
/// cycle always lies inside the touched-descendants region, and schemas of
/// unaffected nodes are unchanged because the region is successor-closed.
/// The returned diagnostic may name a different (equally real) finding than
/// the full screen when several problems coexist.
pub fn screen_delta(
    fork: &EtlFlow,
    base_schemas: &etl_model::SchemaTable,
    delta: &flowgraph::CowDelta,
) -> Option<Diagnostic> {
    let g = &fork.graph;
    if g.node_count() == 0 {
        return Some(from_flow_error(fork, &FlowError::Empty));
    }
    // One pass detects both patch-created cycles (NotADag: a cycle through
    // the patch always crosses a touched node) and schema breaks; the cycle
    // verdict is pulled out first to keep the full screen's precedence
    // (cycle → arity → schema).
    let propagated = etl_model::propagate_schemas_delta(fork, base_schemas, delta);
    if matches!(propagated, Err(etl_model::SchemaError::NotADag)) {
        return Some(from_flow_error(fork, &FlowError::Cyclic));
    }
    if let Some(d) = touched_arity_diag(fork, delta) {
        return Some(d);
    }
    if let Err(e) = propagated {
        return Some(from_flow_error(fork, &FlowError::Schema(e)));
    }
    None
}

/// The structural half of [`screen_delta`], for callers that have already
/// re-validated schema propagation over the patch (e.g. by carrying the
/// fork's schema table through [`etl_model::repair_table`]): emptiness,
/// patch-created cycles, and degree/arity rules at touched nodes. Same
/// precondition as [`screen_delta`] — `screen(base)` returned `None`.
pub fn screen_delta_structural(fork: &EtlFlow, delta: &flowgraph::CowDelta) -> Option<Diagnostic> {
    if fork.graph.node_count() == 0 {
        return Some(from_flow_error(fork, &FlowError::Empty));
    }
    if flowgraph::affected_topo(&fork.graph, &delta.touched_nodes).is_none() {
        return Some(from_flow_error(fork, &FlowError::Cyclic));
    }
    touched_arity_diag(fork, delta)
}

/// Degree and arity checks restricted to a patch's touched nodes (any
/// adjacency edit unshares the slot, so only touched nodes can violate).
fn touched_arity_diag(fork: &EtlFlow, delta: &flowgraph::CowDelta) -> Option<Diagnostic> {
    let g = &fork.graph;
    for &n in &delta.touched_nodes {
        let Some(op) = fork.op(n) else { continue };
        let ins = g.in_degree(n);
        let outs = g.out_degree(n);
        let err = if ins == 0 && !matches!(op.kind, OpKind::Extract { .. }) {
            Some(FlowError::NonExtractSource(op.name.clone()))
        } else if outs == 0 && !matches!(op.kind, OpKind::Load { .. }) {
            Some(FlowError::NonLoadSink(op.name.clone()))
        } else {
            let (ilo, ihi) = op.kind.input_arity();
            let (olo, ohi) = op.kind.output_arity();
            if ins < ilo || ins > ihi {
                Some(FlowError::InputArity(op.name.clone(), ins, ilo, ihi))
            } else if outs < olo || outs > ohi {
                Some(FlowError::OutputArity(op.name.clone(), outs, olo, ohi))
            } else {
                None
            }
        };
        if let Some(e) = err {
            return Some(from_flow_error(fork, &e));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Pass 1: graph well-formedness.

/// Graph-shape pass: emptiness (PA001), cycles (PA002), weak disconnection
/// (PA003), source/sink rules (PA004/PA005), operator arity (PA006/PA007)
/// and dangling channels (PA008).
pub fn well_formedness(flow: &EtlFlow) -> Vec<Diagnostic> {
    let g = &flow.graph;
    let mut out = Vec::new();
    if g.node_count() == 0 {
        out.push(
            Diagnostic::error(codes::EMPTY_FLOW, Location::Graph, "flow has no operations")
                .with_suggestion("add at least an extract and a load operation"),
        );
        return out;
    }
    let cyclic = match topo_sort(g) {
        Ok(_) => false,
        Err(e) => {
            out.push(
                Diagnostic::error(
                    codes::CYCLE,
                    Location::Node(e.witness),
                    "flow graph contains a directed cycle",
                )
                .with_suggestion("remove the back edge so data flows extract → load only"),
            );
            true
        }
    };
    let components = weakly_connected_components(g);
    if components.len() > 1 {
        out.push(
            Diagnostic::warn(
                codes::DISCONNECTED,
                Location::Graph,
                format!(
                    "flow splits into {} disconnected subgraphs",
                    components.len()
                ),
            )
            .with_suggestion("connect the fragments or split them into separate flows"),
        );
    }
    for (n, op) in g.nodes() {
        let indeg = g.in_degree(n);
        let outdeg = g.out_degree(n);
        // Source/sink role rules come first: they explain *why* the arity is
        // off for a degree-0 node, so the arity checks skip that axis.
        let extract = matches!(op.kind, OpKind::Extract { .. });
        let load = matches!(op.kind, OpKind::Load { .. });
        if indeg == 0 && !extract {
            out.push(
                Diagnostic::error(
                    codes::NON_EXTRACT_SOURCE,
                    Location::Node(n),
                    format!("`{}` has no inputs but is not an extract", op.name),
                )
                .with_suggestion("connect an upstream operation or make it an EXTRACT"),
            );
        } else if !within(indeg, op.kind.input_arity()) {
            out.push(Diagnostic::error(
                codes::INPUT_ARITY,
                Location::Node(n),
                format!(
                    "`{}` has {indeg} inputs, expected {}",
                    op.name,
                    arity_text(op.kind.input_arity())
                ),
            ));
        }
        if outdeg == 0 && !load {
            out.push(
                Diagnostic::error(
                    codes::NON_LOAD_SINK,
                    Location::Node(n),
                    format!("`{}` has no outputs but is not a load", op.name),
                )
                .with_suggestion("connect a downstream operation or make it a LOAD"),
            );
        } else if !within(outdeg, op.kind.output_arity()) {
            out.push(Diagnostic::error(
                codes::OUTPUT_ARITY,
                Location::Node(n),
                format!(
                    "`{}` has {outdeg} outputs, expected {}",
                    op.name,
                    arity_text(op.kind.output_arity())
                ),
            ));
        }
    }
    // Dangling channels cannot be built through the public API (node removal
    // cascades), so this is a guard against corruption, not a common lint.
    for e in g.edge_ids() {
        let live = g
            .endpoints(e)
            .is_some_and(|(s, d)| g.contains_node(s) && g.contains_node(d));
        if !live {
            out.push(Diagnostic::error(
                codes::DANGLING_CHANNEL,
                Location::Edge(e),
                format!("channel {e} references a removed operation"),
            ));
        }
    }
    let _ = cyclic;
    out
}

fn within(actual: usize, (lo, hi): (usize, usize)) -> bool {
    actual >= lo && actual <= hi
}

fn arity_text((lo, hi): (usize, usize)) -> String {
    if hi == usize::MAX {
        format!("at least {lo}")
    } else if lo == hi {
        format!("exactly {lo}")
    } else {
        format!("{lo}..={hi}")
    }
}

// ---------------------------------------------------------------------------
// Pass 2: field-level dataflow.

/// Field-level dataflow pass on top of [`propagate_schemas`]: unresolved
/// columns (PA010), duplicate attributes (PA011), merge mismatches (PA012),
/// expression type problems (PA013) and dead fields (PA014).
///
/// Skips silently when the graph is cyclic or empty — [`well_formedness`]
/// already owns those findings and schemas cannot propagate.
pub fn dataflow(flow: &EtlFlow) -> Vec<Diagnostic> {
    let g = &flow.graph;
    if g.node_count() == 0 || has_cycle(g) {
        return Vec::new();
    }
    let schemas = match propagate_schemas(flow) {
        Ok(s) => s,
        // Propagation stops at the first unresolved reference; report it and
        // let the user iterate (matching how compilers gate later passes).
        Err(e) => return vec![schema_error_diagnostic(flow, &e)],
    };
    dataflow_with(flow, &schemas)
}

/// [`dataflow`] over an already-propagated schema table.
fn dataflow_with(flow: &EtlFlow, schemas: &etl_model::SchemaTable) -> Vec<Diagnostic> {
    let g = &flow.graph;
    let mut out = Vec::new();
    for (n, op) in g.nodes() {
        let input = g
            .predecessors(n)
            .next()
            .and_then(|p| schemas[p.index()].as_deref());
        match &op.kind {
            OpKind::Filter { predicate } | OpKind::Router { predicate } => {
                if let Some(schema) = input {
                    check_predicate(predicate, schema, n, &op.name, &mut out);
                }
            }
            OpKind::Derive { outputs } => {
                if let Some(schema) = input {
                    for (_, expr) in outputs {
                        check_arithmetic(expr, schema, n, &op.name, &mut out);
                    }
                }
            }
            _ => {}
        }
    }
    dead_fields(flow, schemas, &mut out);
    out
}

/// A predicate must be boolean; its arithmetic subterms must be numeric.
fn check_predicate(
    predicate: &Expr,
    schema: &Schema,
    n: NodeId,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    if let Ok(t) = predicate.result_type(schema) {
        if t != DataType::Bool {
            out.push(
                Diagnostic::error(
                    codes::EXPR_TYPE,
                    Location::Node(n),
                    format!("predicate of `{name}` has type {}, expected bool", t.name()),
                )
                .with_suggestion("compare the expression against a value, e.g. `expr > 0`"),
            );
        }
    }
    check_arithmetic(predicate, schema, n, name, out);
}

/// Walks an expression flagging arithmetic over non-numeric operands.
/// [`Expr::result_type`] itself never type-errors (it coerces), so this is
/// the analyzer's own stricter walk; findings are warnings because runtime
/// evaluation degrades to null rather than crashing.
fn check_arithmetic(
    expr: &Expr,
    schema: &Schema,
    n: NodeId,
    name: &str,
    out: &mut Vec<Diagnostic>,
) {
    match expr {
        Expr::Bin(op, a, b) => {
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div) {
                for side in [a, b] {
                    if let Ok(t) = side.result_type(schema) {
                        if !t.is_numeric() {
                            out.push(
                                Diagnostic::warn(
                                    codes::EXPR_TYPE,
                                    Location::Node(n),
                                    format!(
                                        "arithmetic in `{name}` over non-numeric operand \
                                         `{side}` of type {}",
                                        t.name()
                                    ),
                                )
                                .with_suggestion("convert the attribute to int or float first"),
                            );
                        }
                    }
                }
            }
            check_arithmetic(a, schema, n, name, out);
            check_arithmetic(b, schema, n, name, out);
        }
        Expr::Not(a) | Expr::IsNull(a) => check_arithmetic(a, schema, n, name, out),
        Expr::Coalesce(xs) => {
            for x in xs {
                check_arithmetic(x, schema, n, name, out);
            }
        }
        Expr::Col(_) | Expr::Lit(_) => {}
    }
}

/// Flags fields introduced by an extract or derive that no reachable
/// downstream operation ever consumes (PA014, warn). "Consumes" includes a
/// load writing the field out; join renames (`r_` prefixing on clash) are
/// normalised so a field consumed under its post-join name stays live.
fn dead_fields(
    flow: &EtlFlow,
    schemas: &[Option<std::sync::Arc<Schema>>],
    out: &mut Vec<Diagnostic>,
) {
    let g = &flow.graph;
    for (n, op) in g.nodes() {
        let introduced: Vec<&str> = match &op.kind {
            OpKind::Extract { schema, .. } => {
                schema.attrs().iter().map(|a| a.name.as_str()).collect()
            }
            OpKind::Derive { outputs } => outputs.iter().map(|(c, _)| c.as_str()).collect(),
            _ => continue,
        };
        if introduced.is_empty() {
            continue;
        }
        let downstream: Vec<NodeId> = reachable_from(g, n)
            .into_iter()
            .filter(|&d| d != n)
            .collect();
        for field in introduced {
            let live = downstream.iter().any(|&d| {
                let op = match flow.op(d) {
                    Some(op) => op,
                    None => return false,
                };
                match &op.kind {
                    // A load consumes everything it writes out.
                    OpKind::Load { .. } => schemas[d.index()]
                        .as_ref()
                        .is_some_and(|s| s.attrs().iter().any(|a| names_match(&a.name, field))),
                    // FilterNulls with no column list guards every attribute.
                    OpKind::FilterNulls { columns } if columns.is_empty() => true,
                    _ => consumed_columns(&op.kind)
                        .iter()
                        .any(|c| names_match(c, field)),
                }
            });
            if !live {
                out.push(
                    Diagnostic::warn(
                        codes::DEAD_FIELD,
                        Location::Node(n),
                        format!(
                            "field `{field}` introduced by `{}` is never consumed",
                            op.name
                        ),
                    )
                    .with_suggestion(format!(
                        "project `{field}` away at the source or use it downstream"
                    )),
                );
            }
        }
    }
}

/// Attribute names an operation reads, by kind.
fn consumed_columns(kind: &OpKind) -> Vec<String> {
    match kind {
        OpKind::Filter { predicate } | OpKind::Router { predicate } => {
            predicate.columns().into_iter().map(String::from).collect()
        }
        OpKind::Project { keep } => keep.clone(),
        OpKind::Derive { outputs } => outputs
            .iter()
            .flat_map(|(_, e)| e.columns().into_iter().map(String::from))
            .collect(),
        OpKind::Convert { column, .. } => vec![column.clone()],
        OpKind::Join {
            left_key,
            right_key,
        } => vec![left_key.clone(), right_key.clone()],
        OpKind::Aggregate { group_by, aggs } => group_by
            .iter()
            .cloned()
            .chain(aggs.iter().map(|(_, _, input)| input.clone()))
            .collect(),
        OpKind::Sort { by } => by.clone(),
        OpKind::Dedup { keys } => keys.clone(),
        OpKind::FilterNulls { columns } => columns.clone(),
        OpKind::Crosscheck { key, .. } => vec![key.clone()],
        OpKind::Extract { .. }
        | OpKind::Load { .. }
        | OpKind::Split
        | OpKind::Partition
        | OpKind::Merge
        | OpKind::Checkpoint { .. }
        | OpKind::Encrypt => Vec::new(),
    }
}

/// `consumed` matches `field` directly or through the join rename scheme
/// (clashing right-side attributes get `r_` prepended, then underscores
/// until unique — see `Schema::join_concat`).
fn names_match(consumed: &str, field: &str) -> bool {
    consumed == field
        || consumed
            .strip_prefix("r_")
            .is_some_and(|rest| rest.trim_end_matches('_') == field)
}

// ---------------------------------------------------------------------------
// Pass 3: pattern preconditions.

/// Validates one pattern application point before the planner clones the
/// flow: the point must still exist (PA020) and every prerequisite of the
/// pattern must hold there (PA021). Returns all violations (a planner only
/// needs `!is_empty()`; a lint consumer wants the full list).
pub fn check_application(
    ctx: &PatternContext<'_>,
    pattern: &dyn Pattern,
    point: ApplicationPoint,
) -> Vec<Diagnostic> {
    let location = match point {
        ApplicationPoint::Graph => Location::Graph,
        ApplicationPoint::Node(n) => Location::Node(n),
        ApplicationPoint::Edge(e) => Location::Edge(e),
    };
    if !point.is_live(ctx.flow) {
        return vec![Diagnostic::error(
            codes::DEAD_POINT,
            location,
            format!(
                "pattern `{}` targets {} which no longer exists",
                pattern.name(),
                point.describe(ctx.flow)
            ),
        )];
    }
    pattern
        .prerequisites()
        .iter()
        .filter(|p| !p.satisfied(ctx, point, pattern.name()))
        .map(|p| {
            Diagnostic::error(
                codes::PREREQUISITE,
                location,
                format!(
                    "pattern `{}` prerequisite {p:?} unsatisfied at {}",
                    pattern.name(),
                    point.describe(ctx.flow)
                ),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Error mapping.

/// Maps a [`FlowError`] from [`EtlFlow::validate`] onto the diagnostic that
/// the full analyzer would emit for the same defect, resolving operation
/// names back to node locations where possible.
pub fn from_flow_error(flow: &EtlFlow, err: &FlowError) -> Diagnostic {
    flow_error_diagnostic_at(Some(flow), err)
}

/// [`from_flow_error`] without a flow to resolve locations against —
/// everything points at [`Location::Graph`]. This is what error conversions
/// in layers that no longer hold the flow use.
pub fn flow_error_diagnostic(err: &FlowError) -> Diagnostic {
    flow_error_diagnostic_at(None, err)
}

fn flow_error_diagnostic_at(flow: Option<&EtlFlow>, err: &FlowError) -> Diagnostic {
    let locate = |name: &str| {
        flow.map(|f| node_by_name(f, name))
            .unwrap_or(Location::Graph)
    };
    match err {
        FlowError::Empty => {
            Diagnostic::error(codes::EMPTY_FLOW, Location::Graph, "flow has no operations")
        }
        FlowError::Cyclic => Diagnostic::error(
            codes::CYCLE,
            Location::Graph,
            "flow graph contains a directed cycle",
        ),
        FlowError::NonExtractSource(name) => Diagnostic::error(
            codes::NON_EXTRACT_SOURCE,
            locate(name),
            format!("`{name}` has no inputs but is not an extract"),
        ),
        FlowError::NonLoadSink(name) => Diagnostic::error(
            codes::NON_LOAD_SINK,
            locate(name),
            format!("`{name}` has no outputs but is not a load"),
        ),
        FlowError::InputArity(name, actual, lo, hi) => Diagnostic::error(
            codes::INPUT_ARITY,
            locate(name),
            format!(
                "`{name}` has {actual} inputs, expected {}",
                arity_text((*lo, *hi))
            ),
        ),
        FlowError::OutputArity(name, actual, lo, hi) => Diagnostic::error(
            codes::OUTPUT_ARITY,
            locate(name),
            format!(
                "`{name}` has {actual} outputs, expected {}",
                arity_text((*lo, *hi))
            ),
        ),
        FlowError::Graph(e) => Diagnostic::error(
            codes::DANGLING_CHANNEL,
            Location::Graph,
            format!("graph operation failed: {e}"),
        ),
        FlowError::Schema(e) => schema_error_diagnostic_at(flow, e),
    }
}

/// Maps a [`SchemaError`] from [`propagate_schemas`] onto a diagnostic.
pub fn schema_error_diagnostic(flow: &EtlFlow, err: &SchemaError) -> Diagnostic {
    schema_error_diagnostic_at(Some(flow), err)
}

fn schema_error_diagnostic_at(flow: Option<&EtlFlow>, err: &SchemaError) -> Diagnostic {
    let locate = |name: &str| {
        flow.map(|f| node_by_name(f, name))
            .unwrap_or(Location::Graph)
    };
    match err {
        SchemaError::Bind { op, column } | SchemaError::MissingAttr { op, column } => {
            Diagnostic::error(
                codes::UNRESOLVED_COLUMN,
                locate(op),
                format!("`{op}` references column `{column}` absent from its input schema"),
            )
            .with_suggestion(format!(
                "produce `{column}` upstream or correct the reference"
            ))
        }
        SchemaError::DuplicateAttr { op, column } => Diagnostic::error(
            codes::DUPLICATE_ATTRIBUTE,
            locate(op),
            format!("`{op}` would introduce duplicate attribute `{column}`"),
        )
        .with_suggestion(format!("rename the derived attribute `{column}`")),
        SchemaError::MergeMismatch { op } => Diagnostic::error(
            codes::MERGE_MISMATCH,
            locate(op),
            format!("inputs of merge `{op}` have mismatching schemas"),
        )
        .with_suggestion("align attribute names and types on every merge input"),
        SchemaError::NotADag => Diagnostic::error(
            codes::CYCLE,
            Location::Graph,
            "flow graph contains a directed cycle",
        ),
    }
}

fn node_by_name(flow: &EtlFlow, name: &str) -> Location {
    flow.graph
        .nodes()
        .find(|(_, op)| op.name == name)
        .map(|(n, _)| Location::Node(n))
        .unwrap_or(Location::Graph)
}

// ---------------------------------------------------------------------------
// Rendering.

/// Formats diagnostics rustc-style against the flow they were produced from:
///
/// ```text
/// error[PA010]: `FILTER q` references column `qty` absent from its input schema
///   --> node 3 (`FILTER q`) in flow `purchases`
///   = help: produce `qty` upstream or correct the reference
/// ```
pub fn render(flow: &EtlFlow, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!("{d}\n"));
        out.push_str(&format!(
            "  --> {} in flow `{}`\n",
            d.location.describe(flow),
            flow.name
        ));
        for note in &d.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        if let Some(s) = &d.suggestion {
            out.push_str(&format!("  = help: {s}\n"));
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warns = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str(&format!(
        "{}: {errors} error(s), {warns} warning(s) in flow `{}`\n",
        if errors > 0 { "FAIL" } else { "ok" },
        flow.name
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etl_model::{Attribute, Channel, Operation};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::required("id", DataType::Int),
            Attribute::new("name", DataType::Str),
            Attribute::new("price", DataType::Float),
        ])
    }

    /// extract → filter(id > 0) → load, all three attrs loaded.
    fn valid_flow() -> EtlFlow {
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        let b = f.add_op(Operation::filter("F", Expr::col("id").gt(Expr::lit_i(0))));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        f
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn a_valid_flow_is_clean() {
        let diags = analyze(&valid_flow());
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert!(screen(&valid_flow()).is_none());
    }

    #[test]
    fn screen_delta_agrees_with_full_screen() {
        let base = valid_flow();
        let base_schemas = propagate_schemas(&base).unwrap();

        // Clean patch: interpose a valid filter on the first edge.
        let mut good = base.fork("good");
        let e = good.graph.edge_ids().next().unwrap();
        good.graph
            .interpose_on_edge(
                e,
                Operation::filter("F2", Expr::col("price").gt(Expr::lit_i(0))),
                Channel::default(),
                Channel::default(),
            )
            .unwrap();
        let delta = good.delta_since(&base);
        assert!(screen(&good).is_none());
        assert!(screen_delta(&good, &base_schemas, &delta).is_none());

        // Schema-breaking patch: filter over a ghost column.
        let mut bad = base.fork("bad");
        let e = bad.graph.edge_ids().next().unwrap();
        bad.graph
            .interpose_on_edge(
                e,
                Operation::filter("G", Expr::col("ghost").gt(Expr::lit_i(0))),
                Channel::default(),
                Channel::default(),
            )
            .unwrap();
        let delta = bad.delta_since(&base);
        let fast = screen_delta(&bad, &base_schemas, &delta).expect("must reject");
        let slow = screen(&bad).expect("must reject");
        assert_eq!(fast.code, slow.code);
        assert_eq!(fast.code, codes::UNRESOLVED_COLUMN);

        // Structure-breaking patch: removing the load leaves a non-load sink.
        let mut cut = base.fork("cut");
        let load = cut
            .graph
            .nodes()
            .find(|(_, op)| matches!(op.kind, OpKind::Load { .. }))
            .map(|(n, _)| n)
            .unwrap();
        cut.graph.remove_node(load);
        let delta = cut.delta_since(&base);
        let fast = screen_delta(&cut, &base_schemas, &delta).expect("must reject");
        let slow = screen(&cut).expect("must reject");
        assert_eq!(fast.code, slow.code);

        // Cycle-creating patch.
        let mut cyc = base.fork("cyc");
        let filter = cyc
            .graph
            .nodes()
            .find(|(_, op)| op.name == "F")
            .map(|(n, _)| n)
            .unwrap();
        let extract = cyc.graph.predecessors(filter).next().unwrap();
        cyc.graph
            .add_edge(filter, extract, Channel::default())
            .unwrap();
        let delta = cyc.delta_since(&base);
        let fast = screen_delta(&cyc, &base_schemas, &delta).expect("must reject");
        assert_eq!(fast.code, codes::CYCLE);
        assert_eq!(screen(&cyc).unwrap().code, codes::CYCLE);

        // Untouched fork sails through.
        let same = base.fork("same");
        let delta = same.delta_since(&base);
        assert!(delta.is_empty());
        assert!(screen_delta(&same, &base_schemas, &delta).is_none());
    }

    #[test]
    fn empty_flow_is_pa001() {
        let diags = analyze(&EtlFlow::new("e"));
        assert_eq!(codes_of(&diags), vec![codes::EMPTY_FLOW]);
        assert_eq!(screen(&EtlFlow::new("e")).unwrap().code, codes::EMPTY_FLOW);
    }

    #[test]
    fn cycles_are_pa002_and_suppress_dataflow() {
        let mut f = valid_flow();
        let filter = f
            .graph
            .nodes()
            .find(|(_, op)| op.name == "F")
            .map(|(n, _)| n)
            .unwrap();
        let extract = f.graph.predecessors(filter).next().unwrap();
        f.graph
            .add_edge(filter, extract, Channel::default())
            .unwrap();
        let diags = analyze(&f);
        assert!(diags.iter().any(|d| d.code == codes::CYCLE));
        assert!(!diags.iter().any(|d| d.code == codes::UNRESOLVED_COLUMN));
        assert!(dataflow(&f).is_empty());
    }

    #[test]
    fn disconnected_fragments_warn_pa003() {
        let mut f = valid_flow();
        let x = f.add_op(Operation::extract("lonely", schema()));
        let l = f.add_op(Operation::load("lonely_dw"));
        f.connect(x, l).unwrap();
        let diags = analyze(&f);
        let d = diags
            .iter()
            .find(|d| d.code == codes::DISCONNECTED)
            .unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("2 disconnected"));
    }

    #[test]
    fn source_sink_and_arity_rules() {
        // filter with no input, extract with no output
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        let b = f.add_op(Operation::filter("F", Expr::col("id").gt(Expr::lit_i(0))));
        let c = f.add_op(Operation::load("dw"));
        f.connect(b, c).unwrap();
        let diags = well_formedness(&f);
        assert!(diags.iter().any(|d| d.code == codes::NON_EXTRACT_SOURCE
            && matches!(d.location, Location::Node(n) if n == b)));
        assert!(diags
            .iter()
            .any(|d| d.code == codes::NON_LOAD_SINK
                && matches!(d.location, Location::Node(n) if n == a)));

        // a join with a single input is an arity error, not a source error
        let mut f = EtlFlow::new("j");
        let a = f.add_op(Operation::extract("src", schema()));
        let j = f.add_op(Operation::new(
            "J",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, j).unwrap();
        f.connect(j, l).unwrap();
        let diags = well_formedness(&f);
        let d = diags.iter().find(|d| d.code == codes::INPUT_ARITY).unwrap();
        assert!(d.message.contains("has 1 inputs, expected exactly 2"));

        // a router with one output is an output-arity error
        let mut f = EtlFlow::new("r");
        let a = f.add_op(Operation::extract("src", schema()));
        let r = f.add_op(Operation::new(
            "R",
            OpKind::Router {
                predicate: Expr::col("id").gt(Expr::lit_i(0)),
            },
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, r).unwrap();
        f.connect(r, l).unwrap();
        let diags = well_formedness(&f);
        assert!(diags.iter().any(|d| d.code == codes::OUTPUT_ARITY));
    }

    #[test]
    fn unresolved_columns_are_pa010() {
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        let b = f.add_op(Operation::filter(
            "F",
            Expr::col("ghost").gt(Expr::lit_i(0)),
        ));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        let diags = analyze(&f);
        let d = diags
            .iter()
            .find(|d| d.code == codes::UNRESOLVED_COLUMN)
            .unwrap();
        assert!(d.message.contains("ghost"));
        assert!(matches!(d.location, Location::Node(n) if n == b));
        assert_eq!(screen(&f).unwrap().code, codes::UNRESOLVED_COLUMN);
    }

    #[test]
    fn duplicate_and_merge_schema_errors_map_to_codes() {
        // derive introducing an existing name
        let mut f = EtlFlow::new("d");
        let a = f.add_op(Operation::extract("src", schema()));
        let d = f.add_op(Operation::derive(
            "D",
            vec![("id".to_string(), Expr::lit_i(1))],
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, d).unwrap();
        f.connect(d, l).unwrap();
        assert_eq!(codes_of(&dataflow(&f)), vec![codes::DUPLICATE_ATTRIBUTE]);

        // merge of two different shapes
        let mut f = EtlFlow::new("m");
        let a = f.add_op(Operation::extract("one", schema()));
        let b = f.add_op(Operation::extract(
            "two",
            Schema::new(vec![Attribute::required("other", DataType::Str)]),
        ));
        let m = f.add_op(Operation::new("M", OpKind::Merge));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, m).unwrap();
        f.connect(b, m).unwrap();
        f.connect(m, l).unwrap();
        assert_eq!(codes_of(&dataflow(&f)), vec![codes::MERGE_MISMATCH]);
    }

    #[test]
    fn non_boolean_predicates_are_pa013_errors() {
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        let b = f.add_op(Operation::filter("F", Expr::col("price")));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        let diags = dataflow(&f);
        let d = diags.iter().find(|d| d.code == codes::EXPR_TYPE).unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("expected bool"));
        assert!(has_errors(&diags));
    }

    #[test]
    fn non_numeric_arithmetic_warns_pa013() {
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        let d = f.add_op(Operation::derive(
            "D",
            vec![("twice".to_string(), Expr::col("name").add(Expr::lit_i(1)))],
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, d).unwrap();
        f.connect(d, l).unwrap();
        let diags = dataflow(&f);
        let warn = diags
            .iter()
            .find(|d| d.code == codes::EXPR_TYPE && d.severity == Severity::Warn)
            .unwrap();
        assert!(warn.message.contains("non-numeric"));
        // a warning alone does not make the flow erroneous
        assert!(!has_errors(&diags));
    }

    #[test]
    fn projected_away_fields_warn_pa014() {
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        let p = f.add_op(Operation::project(
            "P",
            vec!["id".to_string(), "name".to_string()],
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, p).unwrap();
        f.connect(p, l).unwrap();
        let diags = dataflow(&f);
        let d = diags.iter().find(|d| d.code == codes::DEAD_FIELD).unwrap();
        assert_eq!(d.severity, Severity::Warn);
        assert!(d.message.contains("`price`"));
        // id and name survive into the load, so only price is dead
        assert_eq!(
            diags.iter().filter(|d| d.code == codes::DEAD_FIELD).count(),
            1
        );
    }

    #[test]
    fn fields_consumed_through_join_renames_stay_live() {
        // both sides carry `id`; the right one becomes `r_id` downstream
        let mut f = EtlFlow::new("j");
        let a = f.add_op(Operation::extract(
            "left",
            Schema::new(vec![Attribute::required("id", DataType::Int)]),
        ));
        let b = f.add_op(Operation::extract(
            "right",
            Schema::new(vec![Attribute::required("id", DataType::Int)]),
        ));
        let j = f.add_op(Operation::new(
            "J",
            OpKind::Join {
                left_key: "id".into(),
                right_key: "id".into(),
            },
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, j).unwrap();
        f.connect(b, j).unwrap();
        f.connect(j, l).unwrap();
        let diags = dataflow(&f);
        assert!(
            !diags.iter().any(|d| d.code == codes::DEAD_FIELD),
            "join-renamed field wrongly flagged dead: {diags:?}"
        );
    }

    #[test]
    fn pattern_precondition_checks() {
        use fcp::Prerequisite;

        struct Demo;
        impl Pattern for Demo {
            fn name(&self) -> &str {
                "Demo"
            }
            fn improves(&self) -> quality::Characteristic {
                quality::Characteristic::Performance
            }
            fn prerequisites(&self) -> Vec<Prerequisite> {
                vec![
                    Prerequisite::IsNode,
                    Prerequisite::NodeKindIn(vec!["filter"]),
                ]
            }
            fn apply(
                &self,
                _flow: &mut EtlFlow,
                _point: ApplicationPoint,
            ) -> Result<fcp::AppliedPattern, fcp::PatternError> {
                unreachable!("never applied in this test")
            }
        }

        let f = valid_flow();
        let ctx = PatternContext::new(&f).unwrap();
        let filter = f
            .graph
            .nodes()
            .find(|(_, op)| op.name == "F")
            .map(|(n, _)| n)
            .unwrap();
        let load = f
            .graph
            .nodes()
            .find(|(_, op)| op.kind.name() == "load")
            .map(|(n, _)| n)
            .unwrap();

        assert!(check_application(&ctx, &Demo, ApplicationPoint::Node(filter)).is_empty());
        let diags = check_application(&ctx, &Demo, ApplicationPoint::Node(load));
        assert_eq!(codes_of(&diags), vec![codes::PREREQUISITE]);
        let diags = check_application(&ctx, &Demo, ApplicationPoint::Graph);
        assert_eq!(diags.len(), 2, "both prerequisites fail at graph point");

        // a point naming a node the flow never had is a dead point
        let ghost = ApplicationPoint::Node(etl_model::NodeId::from_raw(99));
        let diags = check_application(&ctx, &Demo, ghost);
        assert_eq!(codes_of(&diags), vec![codes::DEAD_POINT]);
    }

    #[test]
    fn flow_error_mapping_is_total_and_stable() {
        let f = valid_flow();
        let cases: Vec<(FlowError, &str)> = vec![
            (FlowError::Empty, codes::EMPTY_FLOW),
            (FlowError::Cyclic, codes::CYCLE),
            (
                FlowError::NonExtractSource("F".into()),
                codes::NON_EXTRACT_SOURCE,
            ),
            (FlowError::NonLoadSink("F".into()), codes::NON_LOAD_SINK),
            (
                FlowError::InputArity("F".into(), 0, 1, 1),
                codes::INPUT_ARITY,
            ),
            (
                FlowError::OutputArity("F".into(), 0, 1, 1),
                codes::OUTPUT_ARITY,
            ),
            (
                FlowError::Schema(SchemaError::Bind {
                    op: "F".into(),
                    column: "x".into(),
                }),
                codes::UNRESOLVED_COLUMN,
            ),
            (FlowError::Schema(SchemaError::NotADag), codes::CYCLE),
        ];
        for (err, code) in cases {
            let d = from_flow_error(&f, &err);
            assert_eq!(d.code, code, "for {err:?}");
            assert_eq!(d.severity, Severity::Error);
        }
        // named locations resolve to the actual node
        let d = from_flow_error(&f, &FlowError::NonLoadSink("F".into()));
        assert!(matches!(d.location, Location::Node(_)));
        let d = from_flow_error(&f, &FlowError::NonLoadSink("no such op".into()));
        assert_eq!(d.location, Location::Graph);
    }

    #[test]
    fn rendering_is_rustc_shaped() {
        let mut f = EtlFlow::new("demo");
        let a = f.add_op(Operation::extract("src", schema()));
        let b = f.add_op(Operation::filter(
            "F",
            Expr::col("ghost").gt(Expr::lit_i(0)),
        ));
        let c = f.add_op(Operation::load("dw"));
        f.connect(a, b).unwrap();
        f.connect(b, c).unwrap();
        let diags = analyze(&f);
        let text = render(&f, &diags);
        assert!(text.contains("error[PA010]"), "{text}");
        assert!(text.contains("--> node"), "{text}");
        assert!(text.contains("= help:"), "{text}");
        assert!(text.contains("FAIL: 1 error(s)"), "{text}");

        let clean = render(&valid_flow(), &[]);
        assert!(clean.starts_with("ok: 0 error(s)"), "{clean}");
    }

    #[test]
    fn analyze_orders_errors_before_warnings() {
        let mut f = EtlFlow::new("t");
        let a = f.add_op(Operation::extract("src", schema()));
        // dead `price` field (warn) + non-boolean predicate (error)
        let b = f.add_op(Operation::filter("F", Expr::col("id")));
        let p = f.add_op(Operation::project(
            "P",
            vec!["id".to_string(), "name".to_string()],
        ));
        let l = f.add_op(Operation::load("dw"));
        f.connect(a, b).unwrap();
        f.connect(b, p).unwrap();
        f.connect(p, l).unwrap();
        let diags = analyze(&f);
        assert!(diags.len() >= 2);
        assert_eq!(diags[0].severity, Severity::Error);
        let first_warn = diags.iter().position(|d| d.severity == Severity::Warn);
        let last_error = diags.iter().rposition(|d| d.severity == Severity::Error);
        if let (Some(w), Some(e)) = (first_warn, last_error) {
            assert!(e < w, "errors must sort before warnings: {diags:?}");
        }
    }

    #[test]
    fn severity_parses_and_orders() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        for s in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::parse(s.name()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }
}
