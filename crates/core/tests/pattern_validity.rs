//! Regression test: every single pattern application on the demo flows must
//! leave a structurally valid, schema-consistent flow. Guards against
//! ordering bugs like the join-side swap the interpose splice once had.

use poiesis::generate::generate_uncapped;

fn check_flow(flow: etl_model::EtlFlow, catalog: datagen::Catalog) {
    let reg = fcp::PatternRegistry::standard_for_catalog(&catalog);
    let cands = generate_uncapped(&flow, &reg).unwrap();
    assert!(!cands.is_empty());
    for c in &cands {
        let mut g = flow.fork("probe");
        if c.pattern.apply(&mut g, c.point).is_ok() {
            g.validate()
                .unwrap_or_else(|e| panic!("invalid flow after {}: {e}", c.describe(&flow)));
        }
    }
}

#[test]
fn every_pattern_application_is_valid_on_tpch() {
    let (f, _) = datagen::tpch::tpch_flow();
    let cat = datagen::tpch::tpch_catalog(100, &datagen::DirtProfile::demo(), 5);
    check_flow(f, cat);
}

#[test]
fn every_pattern_application_is_valid_on_tpcds() {
    let (f, _) = datagen::tpcds::tpcds_flow();
    let cat = datagen::tpcds::tpcds_catalog(100, &datagen::DirtProfile::demo(), 5);
    check_flow(f, cat);
}

#[test]
fn every_pattern_application_is_valid_on_purchases() {
    let (f, _) = datagen::fig2::purchases_flow();
    let cat = datagen::fig2::purchases_catalog(100, &datagen::DirtProfile::demo(), 5);
    check_flow(f, cat);
}
