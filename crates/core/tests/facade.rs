//! Integration tests for the goal-driven facade: builder validation, the
//! handle-based session manager under real concurrency, facade/legacy
//! equivalence, objective-driven ranking, and lossless DTO round-trips.

use datagen::fig2::{purchases_catalog, purchases_flow};
use datagen::{Catalog, DirtProfile};
use fcp::PatternRegistry;
use poiesis::{
    AlternativeSummary, ConstraintSpec, FromJson, GoalSpec, Objective, ObjectiveSpec, PlanRequest,
    PlanResponse, Planner, PlannerConfig, Poiesis, PoiesisError, SessionBuilder, SessionManager,
    ToJson,
};
use proptest::prelude::*;
use quality::{Characteristic, MeasureId};
use std::sync::Arc;

fn flow_and_catalog(seed: u64) -> (etl_model::EtlFlow, Catalog) {
    let (f, _) = purchases_flow();
    let cat = purchases_catalog(120, &DirtProfile::demo(), seed);
    (f, cat)
}

fn builder(seed: u64) -> SessionBuilder {
    let (f, cat) = flow_and_catalog(seed);
    Poiesis::session().flow(f).catalog(cat).budget(400)
}

// ------------------------------------------------------------ equivalence

#[test]
fn facade_skyline_is_identical_to_the_legacy_planner_path() {
    // The acceptance bar: a same-objective run through the new facade and
    // through hand-assembled `Planner::new` + `plan()` must agree exactly.
    let (f, cat) = flow_and_catalog(5);
    let registry = PatternRegistry::standard_for_catalog(&cat);
    let legacy = Planner::new(f.clone(), cat.clone(), registry, PlannerConfig::default())
        .plan()
        .unwrap();

    let session = Poiesis::session().flow(f).catalog(cat).build().unwrap();
    let facade = session.explore().unwrap();

    assert_eq!(facade.skyline_names(), legacy.skyline_names());
    assert_eq!(facade.skyline, legacy.skyline);
    assert_eq!(facade.alternatives.len(), legacy.alternatives.len());
    for (a, b) in facade
        .skyline_alternatives()
        .zip(legacy.skyline_alternatives())
    {
        assert_eq!(a.name, b.name);
        assert_eq!(a.scores, b.scores);
    }
}

// ------------------------------------------------------------ concurrency

#[test]
fn manager_serves_eight_threads_on_distinct_handles() {
    let mgr = Arc::new(SessionManager::new());
    const THREADS: usize = 8;

    // distinct sessions, created up front so every thread works a
    // different handle; single-worker planners keep total thread count sane
    let ids: Vec<_> = (0..THREADS)
        .map(|i| mgr.create(builder(i as u64).workers(1)).unwrap())
        .collect();

    let handles: Vec<_> = ids
        .iter()
        .map(|&id| {
            let mgr = Arc::clone(&mgr);
            std::thread::spawn(move || {
                // two full explore → select cycles per session
                for cycle in 1..=2usize {
                    let response = mgr.explore(id).unwrap();
                    assert_eq!(response.session, Some(id.raw()));
                    assert!(!response.skyline.is_empty());
                    let record = mgr.select(id, 0).unwrap();
                    assert_eq!(record.cycle, cycle);
                }
                mgr.history(id).unwrap()
            })
        })
        .collect();

    let histories: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(mgr.len(), THREADS);
    for history in &histories {
        assert_eq!(history.len(), 2);
    }
    // same seed ⇒ same deterministic history, regardless of interleaving
    assert_eq!(histories[0], mgr.history(ids[0]).unwrap());
    for id in ids {
        mgr.close(id).unwrap();
    }
    assert!(mgr.is_empty());
}

// ------------------------------------------------------- objective-driven

#[test]
fn objective_weights_reorder_the_frontier_ranking() {
    let (f, cat) = flow_and_catalog(5);
    let run = |objective: Objective| {
        let s = Poiesis::session()
            .flow(f.clone())
            .catalog(cat.clone())
            .objective(objective)
            .build()
            .unwrap();
        let out = s.explore().unwrap();
        let names: Vec<String> = out.skyline_alternatives().map(|a| a.name.clone()).collect();
        (out, names)
    };
    let (balanced_out, _) = run(Objective::balanced());
    // heavily favouring data quality must not change the frontier *set*
    // (weights steer ranking, never dominance) …
    let weighted_objective = Objective::new()
        .maximize(Characteristic::Performance)
        .weighted(Characteristic::DataQuality, 50.0)
        .maximize(Characteristic::Reliability);
    let (weighted_out, _) = run(weighted_objective.clone());
    assert_eq!(balanced_out.skyline_names(), weighted_out.skyline_names());
    // … but the best-first order is exactly descending weighted scalar
    let scalars: Vec<f64> = weighted_out
        .skyline_alternatives()
        .map(|a| weighted_objective.scalarize(&a.scores))
        .collect();
    assert!(
        scalars.windows(2).all(|w| w[0] >= w[1]),
        "ranking must follow the weighted objective: {scalars:?}"
    );
    // and rank 0 is the argmax of the weighted scalar over the frontier
    let best = scalars.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(
        weighted_objective.scalarize(&weighted_out.skyline_alternative(0).unwrap().scores),
        best
    );
}

#[test]
fn minimize_direction_inverts_an_axis_end_to_end() {
    // Characteristic scores are orientation-normalized (higher = better),
    // so a Minimize goal must flip both dominance and ranking on its axis:
    // the minimizing run's best design carries the *lowest* performance
    // score its frontier-mate set has to offer, the maximizing run's the
    // highest.
    let (f, cat) = flow_and_catalog(5);
    let run = |direction: poiesis::Direction| {
        let s = Poiesis::session()
            .flow(f.clone())
            .catalog(cat.clone())
            .objective(
                Objective::new()
                    .goal(poiesis::Goal {
                        characteristic: Characteristic::Performance,
                        weight: 1.0,
                        direction,
                    })
                    .maximize(Characteristic::DataQuality),
            )
            .build()
            .unwrap();
        s.explore().unwrap()
    };
    let maxed = run(poiesis::Direction::Maximize);
    let minned = run(poiesis::Direction::Minimize);
    let best_max_perf = maxed.skyline_alternative(0).unwrap().scores[0];
    let best_min_perf = minned.skyline_alternative(0).unwrap().scores[0];
    assert!(
        best_min_perf < best_max_perf,
        "minimizing performance must surface low-performance designs: \
         min-run best {best_min_perf} vs max-run best {best_max_perf}"
    );
    // every design on the minimizing frontier is undominated in the
    // flipped orientation: no other retained design is >= on data quality
    // AND <= on performance (with one strict)
    for &i in &minned.skyline {
        let s = &minned.alternatives[i].scores;
        for a in &minned.alternatives {
            let o = &a.scores;
            let dominates_flipped = o[0] <= s[0] && o[1] >= s[1] && (o[0] < s[0] || o[1] > s[1]);
            assert!(
                !dominates_flipped,
                "{} dominated in flipped orientation",
                minned.alternatives[i].name
            );
        }
    }
}

#[test]
fn objective_constraints_prune_alternatives_through_the_facade() {
    let (f, cat) = flow_and_catalog(5);
    let unconstrained = Poiesis::session()
        .flow(f.clone())
        .catalog(cat.clone())
        .build()
        .unwrap()
        .explore()
        .unwrap();
    // nothing may be slower than the baseline at all: checkpoints and most
    // cleaning patterns cost cycle time, so designs must be rejected
    let constrained = Poiesis::session()
        .flow(f)
        .catalog(cat)
        .objective(Objective::balanced().constrain(MeasureId::CycleTimeMs, 1.0))
        .build()
        .unwrap()
        .explore()
        .unwrap();
    assert!(constrained.rejected_by_constraints > unconstrained.rejected_by_constraints);
    assert!(constrained.alternatives.len() < unconstrained.alternatives.len());
}

// --------------------------------------------------------------- proptest

fn arb_goal() -> impl Strategy<Value = GoalSpec> {
    (0..6usize, 0.01..100.0f64, any::<bool>()).prop_map(|(c, weight, max)| GoalSpec {
        characteristic: Characteristic::ALL[c].key().to_string(),
        weight,
        direction: if max { "max" } else { "min" }.to_string(),
    })
}

fn arb_constraint() -> impl Strategy<Value = ConstraintSpec> {
    (0..17usize, 0.05..20.0f64).prop_map(|(m, ratio)| ConstraintSpec {
        measure: MeasureId::ALL[m].key().to_string(),
        ratio_vs_baseline: ratio,
    })
}

fn arb_request() -> impl Strategy<Value = PlanRequest> {
    let strategy = prop_oneof![
        Just("exhaustive".to_string()),
        (1..64usize).prop_map(|w| format!("beam:{w}")),
        Just("greedy".to_string()),
    ];
    let objective = (
        proptest::collection::vec(arb_goal(), 1..5),
        proptest::collection::vec(arb_constraint(), 0..4),
    )
        .prop_map(|(goals, constraints)| ObjectiveSpec { goals, constraints });
    (
        strategy,
        1..100_000usize,
        (any::<bool>(), any::<bool>()),
        1..32usize,
        // full-range u64: seeds above 2^53 must survive (they travel as
        // decimal strings, not f64)
        any::<u64>(),
        objective,
    )
        .prop_map(
            |(strategy, budget, (simulate, retain), workers, seed, objective)| PlanRequest {
                strategy,
                budget,
                simulate,
                workers,
                retain_dominated: retain,
                seed,
                objective,
            },
        )
}

fn arb_summary() -> impl Strategy<Value = AlternativeSummary> {
    (
        0..64usize,
        "[a-z]{1,12}",
        proptest::collection::vec("[a-z_]{0,16}", 0..3),
        proptest::collection::vec(-1000.0..1000.0f64, 1..4),
        -1e6..1e6f64,
    )
        .prop_map(
            |(rank, name, applied, scores, objective)| AlternativeSummary {
                rank,
                name,
                applied,
                scores,
                objective,
            },
        )
}

fn arb_response() -> impl Strategy<Value = PlanResponse> {
    let session =
        (any::<bool>(), 0..1_000_000usize).prop_map(|(some, raw)| some.then_some(raw as u64));
    (
        session,
        proptest::collection::vec("[a-z_]{1,16}", 1..4),
        proptest::collection::vec(("[a-z_]{1,16}", 0.0..1e9f64), 0..6),
        (0..10_000usize, 0..10_000usize, 0..10_000usize),
        (
            0..100usize,
            0..100usize,
            0..100usize,
            0..100usize,
            0..100usize,
        ),
        proptest::collection::vec(arb_summary(), 0..5),
    )
        .prop_map(
            |(session, axes, baseline, (candidates, enumerated, alternatives), fails, skyline)| {
                PlanResponse {
                    session,
                    axes,
                    baseline,
                    candidates,
                    enumerated,
                    alternatives,
                    rejected_by_constraints: fails.0,
                    failed_applications: fails.1,
                    failed_evaluations: fails.2,
                    statically_rejected: fails.3,
                    bound_pruned: fails.4,
                    skyline,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plan_request_round_trips_losslessly(req in arb_request()) {
        let text = req.to_json_string();
        let back = PlanRequest::from_json_str(&text).unwrap();
        prop_assert_eq!(&back, &req);
        // a second trip is bit-identical (canonical printing)
        prop_assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn plan_response_round_trips_losslessly(resp in arb_response()) {
        let text = resp.to_json_string();
        let back = PlanResponse::from_json_str(&text).unwrap();
        prop_assert_eq!(&back, &resp);
        prop_assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn well_keyed_requests_build_real_objectives(req in arb_request()) {
        // any request whose goals avoid duplicate characteristics must
        // produce a validated Objective via the builder path
        let mut seen = std::collections::HashSet::new();
        prop_assume!(req.objective.goals.iter().all(|g| seen.insert(g.characteristic.clone())));
        let objective = req.objective.to_objective().unwrap();
        prop_assert_eq!(objective.dims(), req.objective.goals.len());
        // and re-encoding it reproduces the spec exactly
        prop_assert_eq!(ObjectiveSpec::from_objective(&objective), req.objective);
    }
}

// ------------------------------------------------------- builder rejects

#[test]
fn builder_rejects_every_invalid_combination_with_the_right_variant() {
    let (f, cat) = flow_and_catalog(5);
    // missing flow
    assert_eq!(
        Poiesis::session().catalog(cat.clone()).build().unwrap_err(),
        PoiesisError::MissingFlow
    );
    // missing catalog
    assert_eq!(
        Poiesis::session().flow(f.clone()).build().unwrap_err(),
        PoiesisError::MissingCatalog
    );
    // empty catalog
    assert_eq!(
        Poiesis::session()
            .flow(f.clone())
            .catalog(Catalog::new())
            .build()
            .unwrap_err(),
        PoiesisError::EmptyCatalog
    );
    // zero-weight objective
    let err = Poiesis::session()
        .flow(f.clone())
        .catalog(cat.clone())
        .objective(Objective::new().weighted(Characteristic::Performance, 0.0))
        .build()
        .unwrap_err();
    assert!(matches!(err, PoiesisError::InvalidObjective(_)), "{err}");
    // goal-less objective
    let err = Poiesis::session()
        .flow(f)
        .catalog(cat)
        .objective(Objective::new())
        .build()
        .unwrap_err();
    assert!(matches!(err, PoiesisError::InvalidObjective(_)), "{err}");
}
