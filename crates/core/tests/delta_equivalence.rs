//! Cross-crate properties of the incremental-evaluation tentpole: delta
//! (copy-on-write + cached-baseline) planning must be *bit-identical* to
//! from-scratch planning — same measure vectors, same Pareto frontier —
//! across every demo workload and every search strategy, and forked flows
//! must actually share their untouched storage.

use datagen::fig2::{purchases_catalog, purchases_flow};
use datagen::tpcds::{tpcds_catalog, tpcds_flow};
use datagen::tpch::{tpch_catalog, tpch_flow};
use datagen::{Catalog, DirtProfile};
use etl_model::EtlFlow;
use fcp::{DeploymentPolicy, PatternRegistry};
use poiesis::SearchStrategyKind;
use poiesis::{Planner, PlannerConfig, PlannerOutcome};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Workload {
    Demo,
    Tpch,
    Tpcds,
}

impl Workload {
    fn build(self, scale: usize) -> (EtlFlow, Catalog) {
        let dirt = DirtProfile::demo();
        match self {
            Workload::Demo => {
                let (f, _) = purchases_flow();
                (f, purchases_catalog(scale, &dirt, 5))
            }
            Workload::Tpch => {
                let (f, _) = tpch_flow();
                (f, tpch_catalog(scale, &dirt, 5))
            }
            Workload::Tpcds => {
                let (f, _) = tpcds_flow();
                (f, tpcds_catalog(scale, &dirt, 5))
            }
        }
    }
}

fn plan(workload: Workload, strategy: SearchStrategyKind, delta_eval: bool) -> PlannerOutcome {
    let (flow, catalog) = workload.build(80);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let config = PlannerConfig {
        strategy,
        delta_eval,
        max_alternatives: 600,
        policy: DeploymentPolicy::exhaustive(2),
        ..PlannerConfig::default()
    };
    Planner::new(flow, catalog, registry, config)
        .plan()
        .unwrap()
}

/// The equality the whole PR hangs on: every retained alternative carries a
/// measure vector equal *to the bit* in both modes, and the frontier is the
/// same set of designs.
fn assert_bit_identical(fast: &PlannerOutcome, slow: &PlannerOutcome) {
    assert_eq!(fast.skyline_names(), slow.skyline_names());
    assert_eq!(fast.skyline, slow.skyline);
    assert_eq!(fast.alternatives.len(), slow.alternatives.len());
    for (a, b) in fast.alternatives.iter().zip(&slow.alternatives) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.measures, b.measures, "measures diverged for {}", a.name);
        assert_eq!(a.scores, b.scores, "scores diverged for {}", a.name);
    }
    assert_eq!(fast.statically_rejected, slow.statically_rejected);
    assert_eq!(fast.failed_applications, slow.failed_applications);
    assert_eq!(fast.failed_evaluations, slow.failed_evaluations);
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop_oneof![
        Just(Workload::Demo),
        Just(Workload::Tpch),
        Just(Workload::Tpcds),
    ]
}

fn arb_strategy() -> impl Strategy<Value = SearchStrategyKind> {
    prop_oneof![
        Just(SearchStrategyKind::Exhaustive),
        (2usize..8).prop_map(|width| SearchStrategyKind::Beam { width }),
        Just(SearchStrategyKind::GreedyHillClimb),
    ]
}

proptest! {
    // Each case runs two full planning cycles; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_planning_matches_scratch_planning(
        workload in arb_workload(),
        strategy in arb_strategy(),
    ) {
        let fast = plan(workload, strategy, true);
        let slow = plan(workload, strategy, false);
        assert_bit_identical(&fast, &slow);
    }
}

#[test]
fn delta_matches_scratch_on_every_workload_and_strategy() {
    // The deterministic floor under the proptest: the full 3×3 grid.
    for workload in [Workload::Demo, Workload::Tpch, Workload::Tpcds] {
        for strategy in [
            SearchStrategyKind::Exhaustive,
            SearchStrategyKind::Beam { width: 4 },
            SearchStrategyKind::GreedyHillClimb,
        ] {
            let fast = plan(workload, strategy, true);
            let slow = plan(workload, strategy, false);
            assert!(!fast.alternatives.is_empty(), "{workload:?}/{strategy}");
            assert_bit_identical(&fast, &slow);
        }
    }
}

#[test]
fn planner_alternatives_share_untouched_storage_with_the_base() {
    // Copy-on-write in anger: every alternative the planner materialises is
    // a fork of the base flow, so all node slots its patch did not touch
    // must still be the *same allocations* as the base flow's.
    let (flow, catalog) = Workload::Demo.build(80);
    let registry = PatternRegistry::standard_for_catalog(&catalog);
    let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());
    let out = planner.plan().unwrap();
    assert!(!out.alternatives.is_empty());
    let base = planner.flow();
    for alt in &out.alternatives {
        let delta = alt.flow.delta_since(base);
        let shared = alt.flow.graph.shared_node_slots(&base.graph);
        let live = alt.flow.graph.node_count();
        // `touched_nodes` is a sound overapproximation (an edge retarget
        // reports both endpoints even when one slot stays shared), so the
        // invariant is one-sided: every node *outside* the touched set must
        // still be the base's allocation.
        assert!(
            shared >= live - delta.touched_nodes.len(),
            "{}: patch unshared unrelated nodes ({} shared, {} live, {} touched)",
            alt.name,
            shared,
            live,
            delta.touched_nodes.len()
        );
        assert!(
            delta.touched_nodes.len() < live,
            "{}: a pattern application must not touch the whole flow",
            alt.name
        );
        assert!(shared > 0, "{}: fork shares nothing", alt.name);
    }
}
