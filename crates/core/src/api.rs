//! Serializable plan DTOs — the wire boundary of the facade.
//!
//! A future network service wraps the [`SessionManager`](crate::SessionManager)
//! and speaks these types: a [`PlanRequest`] carries everything a client
//! may configure (objective, strategy, budget, evaluation mode), a
//! [`PlanResponse`] carries everything worth showing (the Fig. 4 frontier
//! as [`AlternativeSummary`] rows plus cycle statistics). Both round-trip
//! losslessly through the vendored serde's JSON data model
//! ([`serde::json::Value`]) via [`ToJson`] / [`FromJson`] — a property
//! pinned down by proptests in `tests/facade.rs`.
//!
//! Characteristics and measures travel as their stable snake_case keys
//! ([`Characteristic::key`], [`MeasureId::key`]), never as display names,
//! so renaming a label cannot break a client.

use crate::builder::SessionBuilder;
use crate::error::PoiesisError;
use crate::eval::EvalMode;
use crate::objective::{Direction, Goal, Objective};
use crate::planner::{PlannerConfig, PlannerOutcome};
use crate::search::SearchStrategyKind;
use crate::session::IterationRecord;
use quality::{Characteristic, MeasureId, MeasureVector};
use serde::json::{JsonError, Value};
use serde::{FromJson, ToJson};

fn num(n: f64) -> Value {
    // non-finite values (only reachable through caller-constructed DTOs;
    // planner scores are clamped finite) degrade to `null` so the emitted
    // document always parses — the decoder then rejects it loudly instead
    // of choking on a bare `NaN` token
    Value::number(n).unwrap_or(Value::Null)
}

fn int(n: usize) -> Value {
    Value::Number(n as f64)
}

fn string(s: &str) -> Value {
    Value::String(s.to_string())
}

// ------------------------------------------------------------- objective

/// One goal of an [`ObjectiveSpec`]: a characteristic key, a ranking
/// weight and a direction (`"max"` / `"min"`).
#[derive(Debug, Clone, PartialEq)]
pub struct GoalSpec {
    /// Stable characteristic key (e.g. `"data_quality"`).
    pub characteristic: String,
    /// Ranking weight.
    pub weight: f64,
    /// `"max"` or `"min"`.
    pub direction: String,
}

/// One hard constraint of an [`ObjectiveSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintSpec {
    /// Stable measure key (e.g. `"cycle_time_ms"`).
    pub measure: String,
    /// Maximum (lower-is-better) or minimum (higher-is-better) allowed
    /// ratio versus the baseline.
    pub ratio_vs_baseline: f64,
}

/// The wire form of an [`Objective`].
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveSpec {
    /// Goal axes, in order.
    pub goals: Vec<GoalSpec>,
    /// Hard measure constraints.
    pub constraints: Vec<ConstraintSpec>,
}

impl ObjectiveSpec {
    /// Captures an in-memory objective.
    pub fn from_objective(objective: &Objective) -> Self {
        ObjectiveSpec {
            goals: objective
                .goals()
                .iter()
                .map(|g| GoalSpec {
                    characteristic: g.characteristic.key().to_string(),
                    weight: g.weight,
                    direction: match g.direction {
                        Direction::Maximize => "max".to_string(),
                        Direction::Minimize => "min".to_string(),
                    },
                })
                .collect(),
            constraints: objective
                .constraints()
                .iter()
                .map(|c| ConstraintSpec {
                    measure: c.measure.key().to_string(),
                    ratio_vs_baseline: c.ratio_vs_baseline,
                })
                .collect(),
        }
    }

    /// Resolves keys and rebuilds the validated [`Objective`].
    pub fn to_objective(&self) -> Result<Objective, PoiesisError> {
        let mut objective = Objective::new();
        for g in &self.goals {
            let characteristic = Characteristic::from_key(&g.characteristic).ok_or_else(|| {
                PoiesisError::Malformed(format!("unknown characteristic `{}`", g.characteristic))
            })?;
            let direction = match g.direction.as_str() {
                "max" => Direction::Maximize,
                "min" => Direction::Minimize,
                other => {
                    return Err(PoiesisError::Malformed(format!(
                        "direction must be `max` or `min`, got `{other}`"
                    )))
                }
            };
            objective = objective.goal(Goal {
                characteristic,
                weight: g.weight,
                direction,
            });
        }
        for c in &self.constraints {
            let measure = MeasureId::from_key(&c.measure).ok_or_else(|| {
                PoiesisError::Malformed(format!("unknown measure `{}`", c.measure))
            })?;
            objective = objective.constrain(measure, c.ratio_vs_baseline);
        }
        objective.validate()?;
        Ok(objective)
    }
}

impl ToJson for ObjectiveSpec {
    fn to_json(&self) -> Value {
        Value::object([
            (
                "goals".to_string(),
                Value::Array(
                    self.goals
                        .iter()
                        .map(|g| {
                            Value::object([
                                ("characteristic".to_string(), string(&g.characteristic)),
                                ("weight".to_string(), num(g.weight)),
                                ("direction".to_string(), string(&g.direction)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "constraints".to_string(),
                Value::Array(
                    self.constraints
                        .iter()
                        .map(|c| {
                            Value::object([
                                ("measure".to_string(), string(&c.measure)),
                                ("ratio_vs_baseline".to_string(), num(c.ratio_vs_baseline)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for ObjectiveSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let goals = v
            .get("goals")?
            .as_array("goals")?
            .iter()
            .map(|g| {
                Ok(GoalSpec {
                    characteristic: g.get("characteristic")?.as_str("characteristic")?.into(),
                    weight: g.get("weight")?.as_number("weight")?,
                    direction: g.get("direction")?.as_str("direction")?.into(),
                })
            })
            .collect::<Result<_, JsonError>>()?;
        let constraints = v
            .get("constraints")?
            .as_array("constraints")?
            .iter()
            .map(|c| {
                Ok(ConstraintSpec {
                    measure: c.get("measure")?.as_str("measure")?.into(),
                    ratio_vs_baseline: c
                        .get("ratio_vs_baseline")?
                        .as_number("ratio_vs_baseline")?,
                })
            })
            .collect::<Result<_, JsonError>>()?;
        Ok(ObjectiveSpec { goals, constraints })
    }
}

// --------------------------------------------------------------- request

/// Everything a client may configure for a planning cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Search strategy in [`SearchStrategyKind`] display syntax
    /// (`"exhaustive"`, `"beam:8"`, `"greedy"`).
    pub strategy: String,
    /// Hard cap on enumerated alternatives.
    pub budget: usize,
    /// Score by full simulation instead of analytic estimation.
    pub simulate: bool,
    /// Worker threads for concurrent evaluation.
    pub workers: usize,
    /// Keep dominated alternatives (full scatter-plot) or only the
    /// frontier (O(frontier) memory).
    pub retain_dominated: bool,
    /// RNG seed for simulation-mode evaluation.
    pub seed: u64,
    /// The quality objective.
    pub objective: ObjectiveSpec,
}

impl Default for PlanRequest {
    fn default() -> Self {
        let config = PlannerConfig::default();
        PlanRequest {
            strategy: config.strategy.to_string(),
            budget: config.max_alternatives,
            simulate: false,
            workers: config.workers,
            retain_dominated: config.retain_dominated,
            seed: config.seed,
            objective: ObjectiveSpec::from_objective(&config.objective),
        }
    }
}

impl PlanRequest {
    /// Captures a live [`PlannerConfig`] as the wire request that would
    /// reproduce it — the configuration half of a [`SessionSnapshot`].
    /// (The deployment policy is not wire-configurable and therefore not
    /// captured; sessions created through the service always run the
    /// default policy.)
    pub fn from_config(config: &PlannerConfig) -> Self {
        PlanRequest {
            strategy: config.strategy.to_string(),
            budget: config.max_alternatives,
            simulate: config.eval_mode == EvalMode::Simulate,
            workers: config.workers,
            retain_dominated: config.retain_dominated,
            seed: config.seed,
            objective: ObjectiveSpec::from_objective(&config.objective),
        }
    }

    /// Applies the request to a [`SessionBuilder`], resolving strategy and
    /// objective; malformed fields surface as
    /// [`PoiesisError::Malformed`] / [`PoiesisError::InvalidObjective`].
    pub fn apply(&self, builder: SessionBuilder) -> Result<SessionBuilder, PoiesisError> {
        let strategy: SearchStrategyKind =
            self.strategy.parse().map_err(PoiesisError::Malformed)?;
        Ok(builder
            .strategy(strategy)
            .budget(self.budget)
            .eval_mode(if self.simulate {
                EvalMode::Simulate
            } else {
                EvalMode::Estimate
            })
            .workers(self.workers)
            .retain_dominated(self.retain_dominated)
            .seed(self.seed)
            .objective(self.objective.to_objective()?))
    }
}

impl ToJson for PlanRequest {
    fn to_json(&self) -> Value {
        Value::object([
            ("strategy".to_string(), string(&self.strategy)),
            ("budget".to_string(), int(self.budget)),
            ("simulate".to_string(), Value::Bool(self.simulate)),
            ("workers".to_string(), int(self.workers)),
            (
                "retain_dominated".to_string(),
                Value::Bool(self.retain_dominated),
            ),
            // a u64 does not fit f64 losslessly past 2^53, so the seed
            // travels as a decimal string
            ("seed".to_string(), string(&self.seed.to_string())),
            ("objective".to_string(), self.objective.to_json()),
        ])
    }
}

impl FromJson for PlanRequest {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(PlanRequest {
            strategy: v.get("strategy")?.as_str("strategy")?.into(),
            budget: v.get("budget")?.as_usize("budget")?,
            simulate: v.get("simulate")?.as_bool("simulate")?,
            workers: v.get("workers")?.as_usize("workers")?,
            retain_dominated: v.get("retain_dominated")?.as_bool("retain_dominated")?,
            seed: v
                .get("seed")?
                .as_str("seed")?
                .parse()
                .map_err(|_| JsonError("seed: expected a decimal u64 string".into()))?,
            objective: ObjectiveSpec::from_json(v.get("objective")?)?,
        })
    }
}

// -------------------------------------------------------------- response

/// One frontier design, summarised for presentation (the Fig. 4
/// scatter-plot point plus its drill-down handles).
#[derive(Debug, Clone, PartialEq)]
pub struct AlternativeSummary {
    /// Rank on the frontier (0 = best objective).
    pub rank: usize,
    /// Alternative name (base flow + pattern labels).
    pub name: String,
    /// Human-readable descriptions of the applied patterns.
    pub applied: Vec<String>,
    /// Characteristic scores, axis order = `PlanResponse::axes`.
    pub scores: Vec<f64>,
    /// The scalarized objective value (what the ranking sorts by).
    pub objective: f64,
}

impl ToJson for AlternativeSummary {
    fn to_json(&self) -> Value {
        Value::object([
            ("rank".to_string(), int(self.rank)),
            ("name".to_string(), string(&self.name)),
            (
                "applied".to_string(),
                Value::Array(self.applied.iter().map(|a| string(a)).collect()),
            ),
            (
                "scores".to_string(),
                Value::Array(self.scores.iter().map(|&s| num(s)).collect()),
            ),
            ("objective".to_string(), num(self.objective)),
        ])
    }
}

impl FromJson for AlternativeSummary {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(AlternativeSummary {
            rank: v.get("rank")?.as_usize("rank")?,
            name: v.get("name")?.as_str("name")?.into(),
            applied: v
                .get("applied")?
                .as_array("applied")?
                .iter()
                .map(|a| Ok(a.as_str("applied[]")?.to_string()))
                .collect::<Result<_, JsonError>>()?,
            scores: v
                .get("scores")?
                .as_array("scores")?
                .iter()
                .map(|s| s.as_number("scores[]"))
                .collect::<Result<_, JsonError>>()?,
            objective: v.get("objective")?.as_number("objective")?,
        })
    }
}

/// Everything worth showing after one planning cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanResponse {
    /// The owning session handle, when the cycle ran under a
    /// [`SessionManager`](crate::SessionManager).
    pub session: Option<u64>,
    /// The goal axes, as stable characteristic keys (score order).
    pub axes: Vec<String>,
    /// Baseline measures as `(measure key, value)` pairs.
    pub baseline: Vec<(String, f64)>,
    /// Candidate pattern applications considered.
    pub candidates: usize,
    /// Combinations submitted for evaluation.
    pub enumerated: usize,
    /// Alternatives retained after policy/objective admission.
    pub alternatives: usize,
    /// Alternatives rejected by policy or objective constraints.
    pub rejected_by_constraints: usize,
    /// Combinations that failed during application.
    pub failed_applications: usize,
    /// Alternatives whose evaluation errored.
    pub failed_evaluations: usize,
    /// Combinations pruned by the static pre-screen before evaluation.
    pub statically_rejected: usize,
    /// Combinations skipped by the bound-based dominance pre-pruner: their
    /// optimistic score bound was already dominated by the frontier.
    pub bound_pruned: usize,
    /// The Pareto frontier, best objective first.
    pub skyline: Vec<AlternativeSummary>,
}

impl PlanResponse {
    /// Summarises a planner outcome under `objective`.
    pub fn from_outcome(
        outcome: &PlannerOutcome,
        objective: &Objective,
        session: Option<u64>,
    ) -> Self {
        PlanResponse {
            session,
            axes: objective
                .characteristics()
                .iter()
                .map(|c| c.key().to_string())
                .collect(),
            baseline: measure_pairs(&outcome.baseline),
            candidates: outcome.candidates.len(),
            enumerated: outcome.stats.enumerated,
            alternatives: outcome.alternatives.len(),
            rejected_by_constraints: outcome.rejected_by_constraints,
            failed_applications: outcome.failed_applications,
            failed_evaluations: outcome.failed_evaluations,
            statically_rejected: outcome.statically_rejected,
            bound_pruned: outcome.bound_pruned,
            skyline: outcome
                .skyline_alternatives()
                .enumerate()
                .map(|(rank, alt)| AlternativeSummary {
                    rank,
                    name: alt.name.clone(),
                    applied: alt.applied.clone(),
                    scores: alt.scores.clone(),
                    objective: objective.scalarize(&alt.scores),
                })
                .collect(),
        }
    }
}

/// A measure vector as `(stable key, value)` pairs, vector order.
fn measure_pairs(v: &MeasureVector) -> Vec<(String, f64)> {
    v.iter().map(|(id, x)| (id.key().to_string(), x)).collect()
}

impl ToJson for PlanResponse {
    fn to_json(&self) -> Value {
        Value::object([
            (
                "session".to_string(),
                match self.session {
                    Some(id) => int(id as usize),
                    None => Value::Null,
                },
            ),
            (
                "axes".to_string(),
                Value::Array(self.axes.iter().map(|a| string(a)).collect()),
            ),
            (
                "baseline".to_string(),
                Value::Array(
                    self.baseline
                        .iter()
                        .map(|(k, x)| Value::Array(vec![string(k), num(*x)]))
                        .collect(),
                ),
            ),
            ("candidates".to_string(), int(self.candidates)),
            ("enumerated".to_string(), int(self.enumerated)),
            ("alternatives".to_string(), int(self.alternatives)),
            (
                "rejected_by_constraints".to_string(),
                int(self.rejected_by_constraints),
            ),
            (
                "failed_applications".to_string(),
                int(self.failed_applications),
            ),
            (
                "failed_evaluations".to_string(),
                int(self.failed_evaluations),
            ),
            (
                "statically_rejected".to_string(),
                int(self.statically_rejected),
            ),
            ("bound_pruned".to_string(), int(self.bound_pruned)),
            (
                "skyline".to_string(),
                Value::Array(self.skyline.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for PlanResponse {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let session = match v.get_opt("session")? {
            Some(s) => Some(s.as_usize("session")? as u64),
            None => None,
        };
        let baseline = v
            .get("baseline")?
            .as_array("baseline")?
            .iter()
            .map(|pair| {
                let pair = pair.as_array("baseline[]")?;
                if pair.len() != 2 {
                    return Err(JsonError("baseline pairs must be [key, value]".into()));
                }
                Ok((
                    pair[0].as_str("baseline key")?.to_string(),
                    pair[1].as_number("baseline value")?,
                ))
            })
            .collect::<Result<_, JsonError>>()?;
        Ok(PlanResponse {
            session,
            axes: v
                .get("axes")?
                .as_array("axes")?
                .iter()
                .map(|a| Ok(a.as_str("axes[]")?.to_string()))
                .collect::<Result<_, JsonError>>()?,
            baseline,
            candidates: v.get("candidates")?.as_usize("candidates")?,
            enumerated: v.get("enumerated")?.as_usize("enumerated")?,
            alternatives: v.get("alternatives")?.as_usize("alternatives")?,
            rejected_by_constraints: v
                .get("rejected_by_constraints")?
                .as_usize("rejected_by_constraints")?,
            failed_applications: v
                .get("failed_applications")?
                .as_usize("failed_applications")?,
            failed_evaluations: v
                .get("failed_evaluations")?
                .as_usize("failed_evaluations")?,
            statically_rejected: v
                .get("statically_rejected")?
                .as_usize("statically_rejected")?,
            bound_pruned: v.get("bound_pruned")?.as_usize("bound_pruned")?,
            skyline: v
                .get("skyline")?
                .as_array("skyline")?
                .iter()
                .map(AlternativeSummary::from_json)
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

// ------------------------------------------------------------------ lint

/// The wire form of one static-analysis [`Diagnostic`](analysis::Diagnostic):
/// the stable `PA0xx` code, severity, location (kind plus optional node or
/// edge index), message and optional suggestion. Identical in shape to the
/// `diagnostics` entries of an `analysis` error body, so clients need one
/// decoder for both.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosticSpec {
    /// Stable diagnostic code (`"PA001"`…).
    pub code: String,
    /// `"error"`, `"warn"` or `"info"`.
    pub severity: String,
    /// Location kind: `"graph"`, `"node"` or `"edge"`.
    pub location: String,
    /// Node index when `location == "node"`.
    pub node: Option<usize>,
    /// Edge index when `location == "edge"`.
    pub edge: Option<usize>,
    /// Human-readable finding.
    pub message: String,
    /// Suggested fix, when the analyzer has one.
    pub suggestion: Option<String>,
    /// Supporting evidence lines (lineage traces); omitted from the wire
    /// when empty.
    pub notes: Vec<String>,
}

impl DiagnosticSpec {
    /// Captures an in-memory diagnostic.
    pub fn from_diagnostic(d: &analysis::Diagnostic) -> Self {
        let (location, node, edge) = match d.location {
            analysis::Location::Graph => ("graph", None, None),
            analysis::Location::Node(n) => ("node", Some(n.index()), None),
            analysis::Location::Edge(e) => ("edge", None, Some(e.index())),
        };
        DiagnosticSpec {
            code: d.code.to_string(),
            severity: d.severity.name().to_string(),
            location: location.to_string(),
            node,
            edge,
            message: d.message.clone(),
            suggestion: d.suggestion.clone(),
            notes: d.notes.clone(),
        }
    }
}

impl ToJson for DiagnosticSpec {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("code".to_string(), string(&self.code)),
            ("severity".to_string(), string(&self.severity)),
            ("message".to_string(), string(&self.message)),
            ("location".to_string(), string(&self.location)),
        ];
        if let Some(n) = self.node {
            fields.push(("node".to_string(), int(n)));
        }
        if let Some(e) = self.edge {
            fields.push(("edge".to_string(), int(e)));
        }
        if let Some(s) = &self.suggestion {
            fields.push(("suggestion".to_string(), string(s)));
        }
        if !self.notes.is_empty() {
            fields.push((
                "notes".to_string(),
                Value::Array(self.notes.iter().map(|n| string(n)).collect()),
            ));
        }
        Value::object(fields)
    }
}

impl FromJson for DiagnosticSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(DiagnosticSpec {
            code: v.get("code")?.as_str("code")?.into(),
            severity: v.get("severity")?.as_str("severity")?.into(),
            location: v.get("location")?.as_str("location")?.into(),
            node: match v.get_opt("node")? {
                Some(n) => Some(n.as_usize("node")?),
                None => None,
            },
            edge: match v.get_opt("edge")? {
                Some(e) => Some(e.as_usize("edge")?),
                None => None,
            },
            message: v.get("message")?.as_str("message")?.into(),
            suggestion: match v.get_opt("suggestion")? {
                Some(s) => Some(s.as_str("suggestion")?.to_string()),
                None => None,
            },
            notes: match v.get_opt("notes")? {
                Some(n) => n
                    .as_array("notes")?
                    .iter()
                    .map(|x| Ok(x.as_str("notes[]")?.to_string()))
                    .collect::<Result<_, JsonError>>()?,
                None => Vec::new(),
            },
        })
    }
}

/// The response of `POST /sessions/{id}/lint`: the full static-analysis
/// report over a session's current flow.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// The owning session handle, when linted through a manager.
    pub session: Option<u64>,
    /// The name of the flow that was analyzed.
    pub flow: String,
    /// Error-severity findings (these gate planning).
    pub errors: usize,
    /// Warn-severity findings (advisory).
    pub warnings: usize,
    /// Every finding, errors first.
    pub diagnostics: Vec<DiagnosticSpec>,
}

impl LintReport {
    /// Summarises an analyzer run over `flow`.
    pub fn from_diagnostics(
        session: Option<u64>,
        flow: &str,
        diags: &[analysis::Diagnostic],
    ) -> Self {
        LintReport {
            session,
            flow: flow.to_string(),
            errors: diags
                .iter()
                .filter(|d| d.severity == analysis::Severity::Error)
                .count(),
            warnings: diags
                .iter()
                .filter(|d| d.severity == analysis::Severity::Warn)
                .count(),
            diagnostics: diags.iter().map(DiagnosticSpec::from_diagnostic).collect(),
        }
    }

    /// Whether the flow is free of blocking findings.
    pub fn ok(&self) -> bool {
        self.errors == 0
    }
}

impl ToJson for LintReport {
    fn to_json(&self) -> Value {
        Value::object([
            (
                "session".to_string(),
                match self.session {
                    Some(id) => int(id as usize),
                    None => Value::Null,
                },
            ),
            ("flow".to_string(), string(&self.flow)),
            ("ok".to_string(), Value::Bool(self.ok())),
            ("errors".to_string(), int(self.errors)),
            ("warnings".to_string(), int(self.warnings)),
            (
                "diagnostics".to_string(),
                Value::Array(self.diagnostics.iter().map(|d| d.to_json()).collect()),
            ),
        ])
    }
}

impl FromJson for LintReport {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(LintReport {
            session: match v.get_opt("session")? {
                Some(s) => Some(s.as_usize("session")? as u64),
                None => None,
            },
            flow: v.get("flow")?.as_str("flow")?.into(),
            errors: v.get("errors")?.as_usize("errors")?,
            warnings: v.get("warnings")?.as_usize("warnings")?,
            diagnostics: v
                .get("diagnostics")?
                .as_array("diagnostics")?
                .iter()
                .map(DiagnosticSpec::from_json)
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

// --------------------------------------------------------------- history

impl ToJson for IterationRecord {
    fn to_json(&self) -> Value {
        Value::object([
            ("cycle".to_string(), int(self.cycle)),
            ("selected".to_string(), string(&self.selected)),
            (
                "integrated".to_string(),
                Value::Array(self.integrated.iter().map(|p| string(p)).collect()),
            ),
            (
                "scores".to_string(),
                Value::Array(self.scores.iter().map(|&s| num(s)).collect()),
            ),
        ])
    }
}

impl FromJson for IterationRecord {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(IterationRecord {
            cycle: v.get("cycle")?.as_usize("cycle")?,
            selected: v.get("selected")?.as_str("selected")?.into(),
            integrated: v
                .get("integrated")?
                .as_array("integrated")?
                .iter()
                .map(|p| Ok(p.as_str("integrated[]")?.to_string()))
                .collect::<Result<_, JsonError>>()?,
            scores: v
                .get("scores")?
                .as_array("scores")?
                .iter()
                .map(|s| s.as_number("scores[]"))
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

// ------------------------------------------------------------- snapshots

/// The durable form of one managed session: everything needed to rebuild
/// it against the same template after a process restart.
///
/// The flow travels as an xLM document (`flow_xlm`) because the operator
/// graph — including pattern-inserted operations and graph-level
/// configuration changes from earlier selections — is exactly what xLM
/// round-trips; the planner configuration travels as the [`PlanRequest`]
/// that reproduces it. What is *not* captured is the in-flight
/// exploration outcome (`last_outcome`): a restored session must run a
/// fresh `explore` before its next `select`, which the exploration's
/// determinism makes lossless (same flow + catalog + config ⇒ same
/// frontier).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The handle the session was registered under.
    pub id: u64,
    /// The original flow name captured at session start (fork names are
    /// `<base_name>__cycle<N>`).
    pub base_name: String,
    /// The session's current flow as an xLM document.
    pub flow_xlm: String,
    /// The wire request reproducing the session's planner configuration.
    pub request: PlanRequest,
    /// Completed iterations.
    pub history: Vec<IterationRecord>,
}

impl ToJson for SessionSnapshot {
    fn to_json(&self) -> Value {
        Value::object([
            ("id".to_string(), int(self.id as usize)),
            ("base_name".to_string(), string(&self.base_name)),
            ("flow_xlm".to_string(), string(&self.flow_xlm)),
            ("request".to_string(), self.request.to_json()),
            (
                "history".to_string(),
                Value::Array(self.history.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }
}

impl SessionSnapshot {
    /// Internal-consistency check: a snapshot can parse perfectly and
    /// still describe a session no manager could have produced — exactly
    /// the shape a torn or bit-rotted state file takes after the JSON
    /// happens to survive truncation. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_name.is_empty() {
            return Err(format!("session {}: empty base_name", self.id));
        }
        if self.flow_xlm.trim().is_empty() {
            return Err(format!("session {}: empty flow document", self.id));
        }
        // history cycles are issued contiguously from 1 by `Session`
        for (i, record) in self.history.iter().enumerate() {
            if record.cycle != i + 1 {
                return Err(format!(
                    "session {}: history[{}] has cycle {} (expected {})",
                    self.id,
                    i,
                    record.cycle,
                    i + 1
                ));
            }
            if record.selected.is_empty() {
                return Err(format!(
                    "session {}: history[{}] selected nothing",
                    self.id, i
                ));
            }
        }
        Ok(())
    }
}

impl FromJson for SessionSnapshot {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(SessionSnapshot {
            id: v.get("id")?.as_usize("id")? as u64,
            base_name: v.get("base_name")?.as_str("base_name")?.into(),
            flow_xlm: v.get("flow_xlm")?.as_str("flow_xlm")?.into(),
            request: PlanRequest::from_json(v.get("request")?)?,
            history: v
                .get("history")?
                .as_array("history")?
                .iter()
                .map(IterationRecord::from_json)
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

/// The durable form of a whole
/// [`SessionManager`](crate::SessionManager): every live session plus the
/// handle counter (so handles are never reused across restarts).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ManagerSnapshot {
    /// The next handle the manager would issue.
    pub next_id: u64,
    /// All live sessions, ascending by handle.
    pub sessions: Vec<SessionSnapshot>,
}

impl ToJson for ManagerSnapshot {
    fn to_json(&self) -> Value {
        Value::object([
            ("next_id".to_string(), int(self.next_id as usize)),
            (
                "sessions".to_string(),
                Value::Array(self.sessions.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }
}

impl ManagerSnapshot {
    /// Internal-consistency check across the whole snapshot: per-session
    /// [`SessionSnapshot::validate`] plus the manager-level invariants —
    /// unique handles, and a `next_id` strictly above every issued handle
    /// (anything else would let a restored manager *reuse* a handle,
    /// silently aliasing a dead session). Loaders
    /// (`poiesis-server`'s `StateStore`) call this before restoring and
    /// quarantine snapshots that fail it.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for session in &self.sessions {
            if !seen.insert(session.id) {
                return Err(format!("duplicate session handle {}", session.id));
            }
            if session.id >= self.next_id {
                return Err(format!(
                    "session handle {} >= next_id {} — restored handles would be reused",
                    session.id, self.next_id
                ));
            }
            session.validate()?;
        }
        Ok(())
    }
}

impl FromJson for ManagerSnapshot {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(ManagerSnapshot {
            next_id: v.get("next_id")?.as_usize("next_id")? as u64,
            sessions: v
                .get("sessions")?
                .as_array("sessions")?
                .iter()
                .map(SessionSnapshot::from_json)
                .collect::<Result<_, JsonError>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_record_round_trips_through_json_text() {
        let record = IterationRecord {
            cycle: 2,
            selected: "purchases + AddCheckpoint@edge3".into(),
            integrated: vec!["AddCheckpoint@edge3".into(), "FilterNullValues@e1".into()],
            scores: vec![104.5, 99.25, 112.0],
        };
        let back = IterationRecord::from_json_str(&record.to_json_string()).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn default_request_matches_the_default_config() {
        let req = PlanRequest::default();
        assert_eq!(req.strategy, "exhaustive");
        assert_eq!(req.budget, PlannerConfig::default().max_alternatives);
        let objective = req.objective.to_objective().unwrap();
        assert_eq!(objective, Objective::balanced());
    }

    #[test]
    fn request_round_trips_through_json_text() {
        let mut req = PlanRequest {
            strategy: "beam:8".into(),
            simulate: true,
            ..PlanRequest::default()
        };
        req.objective.goals[0].weight = 2.5;
        req.objective.constraints.push(ConstraintSpec {
            measure: "cycle_time_ms".into(),
            ratio_vs_baseline: 1.0,
        });
        let text = req.to_json_string();
        let back = PlanRequest::from_json_str(&text).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn objective_spec_round_trips_through_the_real_objective() {
        let objective = Objective::balanced()
            .minimize(quality::Characteristic::Cost)
            .constrain(MeasureId::AvgLatencyMs, 1.0);
        let spec = ObjectiveSpec::from_objective(&objective);
        assert_eq!(spec.to_objective().unwrap(), objective);
    }

    #[test]
    fn session_snapshot_round_trips_through_json_text() {
        let snapshot = SessionSnapshot {
            id: 7,
            base_name: "s_purchases".into(),
            flow_xlm: "<xlm version=\"1.0\"><design name=\"x\"/></xlm>".into(),
            request: PlanRequest {
                strategy: "beam:4".into(),
                budget: 128,
                ..PlanRequest::default()
            },
            history: vec![IterationRecord {
                cycle: 1,
                selected: "s_purchases+AddCheckpoint@e1".into(),
                integrated: vec!["AddCheckpoint @e1".into()],
                scores: vec![120.0, 100.0],
            }],
        };
        let manager = ManagerSnapshot {
            next_id: 8,
            sessions: vec![snapshot],
        };
        let back = ManagerSnapshot::from_json_str(&manager.to_json_string()).unwrap();
        assert_eq!(back, manager);
    }

    #[test]
    fn from_config_inverts_apply() {
        // a request captured from a config built by that same request must
        // be identical — the property snapshot/restore depends on
        let request = PlanRequest {
            strategy: "beam:6".into(),
            budget: 321,
            simulate: true,
            workers: 3,
            retain_dominated: false,
            seed: 99,
            ..PlanRequest::default()
        };
        let builder = request.apply(SessionBuilder::new()).unwrap();
        assert_eq!(PlanRequest::from_config(builder.config()), request);
    }

    #[test]
    fn lint_report_round_trips_through_json_text() {
        let diags = vec![
            analysis::Diagnostic::error(
                analysis::codes::UNRESOLVED_COLUMN,
                analysis::Location::Node(etl_model::NodeId::from_raw(3)),
                "`F` references column `ghost` absent from its input schema",
            )
            .with_suggestion("produce `ghost` upstream or correct the reference"),
            analysis::Diagnostic::warn(
                analysis::codes::DEAD_FIELD,
                analysis::Location::Edge(etl_model::EdgeId::from_raw(1)),
                "field `x` is never consumed",
            ),
        ];
        let report = LintReport::from_diagnostics(Some(4), "s_purchases", &diags);
        assert_eq!(report.errors, 1);
        assert_eq!(report.warnings, 1);
        assert!(!report.ok());
        let back = LintReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back, report);
        // a clean report is ok and round-trips too
        let clean = LintReport::from_diagnostics(None, "f", &[]);
        assert!(clean.ok());
        let back = LintReport::from_json_str(&clean.to_json_string()).unwrap();
        assert_eq!(back, clean);
    }

    #[test]
    fn diagnostic_spec_matches_the_error_body_wire_shape() {
        // `analysis` error bodies and lint responses must stay decodable
        // by the same client code
        let diag = analysis::Diagnostic::error(
            analysis::codes::UNRESOLVED_COLUMN,
            analysis::Location::Node(etl_model::NodeId::from_raw(3)),
            "boom",
        )
        .with_suggestion("fix it");
        assert_eq!(
            DiagnosticSpec::from_diagnostic(&diag).to_json().to_string(),
            crate::error::diagnostic_json(&diag).to_string()
        );
    }

    #[test]
    fn malformed_specs_are_rejected_with_stable_errors() {
        let mut spec = ObjectiveSpec::from_objective(&Objective::balanced());
        spec.goals[0].characteristic = "speed".into();
        assert!(matches!(
            spec.to_objective(),
            Err(PoiesisError::Malformed(msg)) if msg.contains("speed")
        ));
        let mut spec = ObjectiveSpec::from_objective(&Objective::balanced());
        spec.goals[0].direction = "sideways".into();
        assert!(matches!(
            spec.to_objective(),
            Err(PoiesisError::Malformed(_))
        ));
        let req = PlanRequest {
            strategy: "dfs".into(),
            ..PlanRequest::default()
        };
        assert!(matches!(
            req.apply(SessionBuilder::new()),
            Err(PoiesisError::Malformed(_))
        ));
        assert!(PlanRequest::from_json_str("{\"strategy\":1}").is_err());
    }

    fn plausible_session(id: u64, cycles: usize) -> SessionSnapshot {
        SessionSnapshot {
            id,
            base_name: "purchases".into(),
            flow_xlm: "<design/>".into(),
            request: PlanRequest::default(),
            history: (1..=cycles)
                .map(|cycle| IterationRecord {
                    cycle,
                    selected: format!("purchases__cycle{cycle}"),
                    integrated: vec![],
                    scores: vec![1.0],
                })
                .collect(),
        }
    }

    #[test]
    fn consistent_snapshots_validate() {
        let snapshot = ManagerSnapshot {
            next_id: 5,
            sessions: vec![plausible_session(1, 2), plausible_session(4, 0)],
        };
        assert_eq!(snapshot.validate(), Ok(()));
        assert_eq!(ManagerSnapshot::default().validate(), Ok(()));
    }

    #[test]
    fn inconsistent_snapshots_fail_validation_with_the_violation_named() {
        // duplicate handles
        let snapshot = ManagerSnapshot {
            next_id: 5,
            sessions: vec![plausible_session(1, 0), plausible_session(1, 0)],
        };
        assert!(snapshot.validate().unwrap_err().contains("duplicate"));
        // handle reuse: next_id not above an issued handle
        let snapshot = ManagerSnapshot {
            next_id: 2,
            sessions: vec![plausible_session(2, 0)],
        };
        assert!(snapshot.validate().unwrap_err().contains("reused"));
        // history with a gap (cycle 2 lost — the classic torn recovery)
        let mut bad = plausible_session(1, 3);
        bad.history.remove(1);
        let snapshot = ManagerSnapshot {
            next_id: 2,
            sessions: vec![bad],
        };
        assert!(snapshot.validate().unwrap_err().contains("cycle"));
        // an empty flow document can never rebuild a session
        let mut bad = plausible_session(1, 0);
        bad.flow_xlm = "  ".into();
        assert!(bad.validate().unwrap_err().contains("flow"));
    }
}
