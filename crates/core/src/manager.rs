//! Handle-based, thread-safe session management — the unit a future
//! network service will wrap.
//!
//! The ROADMAP's north star is a system "serving heavy traffic from
//! millions of users"; the paper's GUI holds exactly one iterative session.
//! A [`SessionManager`] bridges the two: it owns many concurrent
//! [`Session`]s behind opaque [`SessionId`] handles and exposes the whole
//! iterative loop (`create` → `explore` → `select` → `history` → `close`)
//! over serializable DTOs. Internally the registry is a read-write-locked
//! handle map of individually mutex-guarded slots, so sessions on
//! *distinct* handles explore and select fully in parallel — the registry
//! lock is only held for the microseconds of handle lookup, never across a
//! planning cycle.

use crate::api::{LintReport, ManagerSnapshot, PlanRequest, PlanResponse, SessionSnapshot};
use crate::builder::SessionBuilder;
use crate::error::PoiesisError;
use crate::planner::PlannerOutcome;
use crate::session::{IterationRecord, Session};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Opaque handle to a managed session. Serializable via
/// [`raw`](Self::raw) / [`from_raw`](Self::from_raw) for wire use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The wire representation of the handle.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from its wire representation. The handle is only
    /// meaningful to the manager that issued it; unknown handles surface
    /// as [`PoiesisError::UnknownSession`].
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One managed session plus the outcome of its latest exploration (kept so
/// a subsequent `select` can integrate a frontier design by rank).
struct Slot {
    session: Session,
    last_outcome: Option<PlannerOutcome>,
}

/// The durable form of one locked slot.
fn snapshot_slot(id: u64, slot: &Slot) -> SessionSnapshot {
    SessionSnapshot {
        id,
        base_name: slot.session.base_name().to_string(),
        flow_xlm: xlm::write_flow(slot.session.current_flow()),
        request: PlanRequest::from_config(slot.session.planner().config()),
        history: slot.session.history().to_vec(),
    }
}

/// Thread-safe owner of many concurrent redesign sessions.
///
/// ```
/// use poiesis::{Poiesis, SessionManager};
/// use datagen::fig2::{purchases_catalog, purchases_flow};
/// use datagen::DirtProfile;
///
/// let manager = SessionManager::new();
/// let (flow, _) = purchases_flow();
/// let catalog = purchases_catalog(80, &DirtProfile::demo(), 5);
/// let id = manager
///     .create(Poiesis::session().flow(flow).catalog(catalog).budget(200))
///     .unwrap();
///
/// let frontier = manager.explore(id).unwrap();   // one planning cycle
/// assert!(!frontier.skyline.is_empty());
/// let record = manager.select(id, 0).unwrap();   // integrate rank 0
/// assert_eq!(record.cycle, 1);
/// assert_eq!(manager.history(id).unwrap().len(), 1);
/// manager.close(id).unwrap();
/// ```
#[derive(Default)]
pub struct SessionManager {
    slots: RwLock<HashMap<u64, Arc<Mutex<Slot>>>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// An empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Validates `builder` and registers the resulting session, returning
    /// its handle.
    pub fn create(&self, builder: SessionBuilder) -> Result<SessionId, PoiesisError> {
        let session = builder.build()?;
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(Mutex::new(Slot {
            session,
            last_outcome: None,
        }));
        self.slots
            .write()
            .expect("session registry")
            .insert(id.raw(), slot);
        Ok(id)
    }

    /// Convenience: applies a wire [`PlanRequest`] on top of `builder`
    /// (which supplies flow/catalog) and registers the session.
    pub fn create_from_request(
        &self,
        builder: SessionBuilder,
        request: &PlanRequest,
    ) -> Result<SessionId, PoiesisError> {
        self.create(request.apply(builder)?)
    }

    /// Handles of all live sessions, ascending.
    pub fn ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .slots
            .read()
            .expect("session registry")
            .keys()
            .map(|&k| SessionId(k))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.read().expect("session registry").len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs one planning cycle on the session, keeps the outcome for a
    /// later `select`, and returns the frontier as a wire DTO.
    pub fn explore(&self, id: SessionId) -> Result<PlanResponse, PoiesisError> {
        let slot = self.slot(id)?;
        let mut slot = slot.lock().expect("session slot");
        let outcome = slot.session.explore()?;
        let response =
            PlanResponse::from_outcome(&outcome, slot.session.objective(), Some(id.raw()));
        slot.last_outcome = Some(outcome);
        Ok(response)
    }

    /// Integrates the frontier design at `rank` (0 = best objective) of
    /// the session's latest exploration, ending the cycle.
    pub fn select(&self, id: SessionId, rank: usize) -> Result<IterationRecord, PoiesisError> {
        let slot = self.slot(id)?;
        let mut slot = slot.lock().expect("session slot");
        // take() — the outcome describes the pre-selection flow, so it is
        // consumed by the selection: a fresh explore must precede the next
        // select.
        let outcome = slot
            .last_outcome
            .take()
            .ok_or(PoiesisError::NothingExplored(id))?;
        let frontier = outcome.skyline_ranked().len();
        match slot.session.select(&outcome, rank) {
            Some(record) => Ok(record.clone()),
            None => {
                // rank out of range: the outcome is still valid, put it back
                let err = PoiesisError::RankOutOfRange { rank, frontier };
                slot.last_outcome = Some(outcome);
                Err(err)
            }
        }
    }

    /// Runs the static analyzer over the session's *current* flow without
    /// planning anything — the backing of `POST /sessions/{id}/lint`. A
    /// session always holds an error-free flow (creation and selection
    /// both gate on the analyzer), so in practice this reports the
    /// warnings: dead fields, disconnected fragments, suspicious
    /// expressions.
    pub fn lint(&self, id: SessionId) -> Result<LintReport, PoiesisError> {
        let slot = self.slot(id)?;
        let slot = slot.lock().expect("session slot");
        let flow = slot.session.current_flow();
        let diags = analysis::analyze(flow);
        Ok(LintReport::from_diagnostics(
            Some(id.raw()),
            &flow.name,
            &diags,
        ))
    }

    /// The session's completed iterations.
    pub fn history(&self, id: SessionId) -> Result<Vec<IterationRecord>, PoiesisError> {
        let slot = self.slot(id)?;
        let slot = slot.lock().expect("session slot");
        Ok(slot.session.history().to_vec())
    }

    /// Closes the session, dropping its state. Subsequent calls with the
    /// handle fail with [`PoiesisError::UnknownSession`].
    pub fn close(&self, id: SessionId) -> Result<(), PoiesisError> {
        self.slots
            .write()
            .expect("session registry")
            .remove(&id.raw())
            .map(|_| ())
            .ok_or(PoiesisError::UnknownSession(id))
    }

    // ------------------------------------------------------- persistence

    /// Captures every live session as a serializable [`ManagerSnapshot`]:
    /// the current flow as an xLM document, the planner configuration as
    /// the [`PlanRequest`] that reproduces it, the iteration history, and
    /// the handle counter (so restored managers never reuse handles).
    ///
    /// The in-flight exploration outcome is deliberately *not* captured —
    /// a restored session must run a fresh `explore` before its next
    /// `select`, and exploration's determinism makes that lossless.
    ///
    /// ```
    /// use poiesis::{Poiesis, SessionManager, ToJson, FromJson, ManagerSnapshot};
    /// use datagen::fig2::{purchases_catalog, purchases_flow};
    /// use datagen::DirtProfile;
    ///
    /// let (flow, _) = purchases_flow();
    /// let catalog = purchases_catalog(80, &DirtProfile::demo(), 5);
    /// let base = || Poiesis::session().flow(flow.clone()).catalog(catalog.clone());
    ///
    /// let manager = SessionManager::new();
    /// let id = manager.create(base().budget(200)).unwrap();
    ///
    /// // snapshot → JSON text → restore: the session survives, handle intact
    /// let text = manager.snapshot().to_json_string();
    /// let snapshot = ManagerSnapshot::from_json_str(&text).unwrap();
    /// let restored = SessionManager::from_snapshot(&snapshot, base).unwrap();
    /// assert_eq!(restored.ids(), vec![id]);
    /// assert!(restored.explore(id).is_ok());
    /// ```
    pub fn snapshot(&self) -> ManagerSnapshot {
        let slots: Vec<(u64, Arc<Mutex<Slot>>)> = {
            let map = self.slots.read().expect("session registry");
            let mut v: Vec<_> = map.iter().map(|(&k, s)| (k, Arc::clone(s))).collect();
            v.sort_unstable_by_key(|(k, _)| *k);
            v
        };
        let sessions = slots
            .into_iter()
            .map(|(id, slot)| snapshot_slot(id, &slot.lock().expect("session slot")))
            .collect();
        let snapshot = ManagerSnapshot {
            next_id: self.next_handle(),
            sessions,
        };
        debug_assert!(
            snapshot.validate().is_ok(),
            "a live manager produced an inconsistent snapshot: {:?}",
            snapshot.validate()
        );
        snapshot
    }

    /// Captures one session, locking only its slot — what an incremental
    /// persister calls after mutating that session, so a long planning
    /// cycle on an *unrelated* session never delays the capture (unlike
    /// [`snapshot`](Self::snapshot), which must wait on every slot).
    pub fn snapshot_session(&self, id: SessionId) -> Result<SessionSnapshot, PoiesisError> {
        let slot = self.slot(id)?;
        let slot = slot.lock().expect("session slot");
        Ok(snapshot_slot(id.raw(), &slot))
    }

    /// The next handle this manager would issue (what
    /// [`ManagerSnapshot::next_id`] records).
    pub fn next_handle(&self) -> u64 {
        self.next_id.load(Ordering::SeqCst)
    }

    /// Rebuilds one session from its snapshot and registers it under its
    /// original handle. `base` supplies what the snapshot does not carry —
    /// the catalog (and a flow, which the snapshot's evolved flow
    /// replaces) — exactly as a server-side session template does.
    ///
    /// Fails with [`PoiesisError::Snapshot`] on an unparsable flow
    /// document or an already-occupied handle, and with the usual builder
    /// errors when the snapshot's request no longer validates.
    pub fn restore(
        &self,
        snapshot: &SessionSnapshot,
        base: SessionBuilder,
    ) -> Result<SessionId, PoiesisError> {
        let flow = xlm::read_flow(&snapshot.flow_xlm).map_err(|e| {
            PoiesisError::Snapshot(format!("session {}: bad flow document: {e}", snapshot.id))
        })?;
        let planner = snapshot.request.apply(base)?.flow(flow).build_planner()?;
        let session = Session::restore(
            planner,
            snapshot.base_name.clone(),
            snapshot.history.clone(),
        );
        let slot = Arc::new(Mutex::new(Slot {
            session,
            last_outcome: None,
        }));
        {
            let mut slots = self.slots.write().expect("session registry");
            if slots.contains_key(&snapshot.id) {
                return Err(PoiesisError::Snapshot(format!(
                    "session {} is already registered",
                    snapshot.id
                )));
            }
            slots.insert(snapshot.id, slot);
        }
        self.next_id.fetch_max(snapshot.id + 1, Ordering::SeqCst);
        Ok(SessionId(snapshot.id))
    }

    /// Rebuilds a whole manager from a [`ManagerSnapshot`], calling `base`
    /// once per session for a fresh template builder. All-or-nothing: the
    /// first session that fails to restore aborts the rebuild.
    pub fn from_snapshot(
        snapshot: &ManagerSnapshot,
        base: impl Fn() -> SessionBuilder,
    ) -> Result<SessionManager, PoiesisError> {
        let manager = SessionManager::new();
        for session in &snapshot.sessions {
            manager.restore(session, base())?;
        }
        manager
            .next_id
            .fetch_max(snapshot.next_id, Ordering::SeqCst);
        Ok(manager)
    }

    /// Clones the slot handle out of the registry so the registry lock is
    /// released before any long-running work.
    fn slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>, PoiesisError> {
        self.slots
            .read()
            .expect("session registry")
            .get(&id.raw())
            .cloned()
            .ok_or(PoiesisError::UnknownSession(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Poiesis;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;

    fn builder() -> SessionBuilder {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(120, &DirtProfile::demo(), 5);
        Poiesis::session().flow(f).catalog(cat).budget(400)
    }

    #[test]
    fn full_lifecycle_over_handles() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        assert_eq!(mgr.ids(), vec![id]);

        let response = mgr.explore(id).unwrap();
        assert_eq!(response.session, Some(id.raw()));
        assert!(!response.skyline.is_empty());

        let record = mgr.select(id, 0).unwrap();
        assert_eq!(record.cycle, 1);
        assert_eq!(record.selected, response.skyline[0].name);
        assert_eq!(mgr.history(id).unwrap().len(), 1);

        mgr.close(id).unwrap();
        assert!(mgr.is_empty());
        assert_eq!(mgr.explore(id), Err(PoiesisError::UnknownSession(id)));
    }

    #[test]
    fn select_requires_a_fresh_exploration() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        assert_eq!(mgr.select(id, 0), Err(PoiesisError::NothingExplored(id)));
        let response = mgr.explore(id).unwrap();
        let frontier = response.skyline.len();
        assert_eq!(
            mgr.select(id, 10_000),
            Err(PoiesisError::RankOutOfRange {
                rank: 10_000,
                frontier
            })
        );
        // an in-range rank still works: the outcome was put back
        mgr.select(id, 0).unwrap();
        // ... but is consumed by the successful selection
        assert_eq!(mgr.select(id, 0), Err(PoiesisError::NothingExplored(id)));
    }

    #[test]
    fn lint_reports_on_the_current_flow() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        let report = mgr.lint(id).unwrap();
        assert_eq!(report.session, Some(id.raw()));
        assert_eq!(report.flow, "s_purchases");
        assert_eq!(report.errors, 0, "sessions only hold error-free flows");
        // linting follows the evolving flow across selections
        mgr.explore(id).unwrap();
        mgr.select(id, 0).unwrap();
        let report = mgr.lint(id).unwrap();
        assert!(report.flow.contains("cycle"), "{}", report.flow);
        assert_eq!(report.errors, 0);
        mgr.close(id).unwrap();
        assert_eq!(mgr.lint(id), Err(PoiesisError::UnknownSession(id)));
    }

    #[test]
    fn handles_are_never_reused() {
        let mgr = SessionManager::new();
        let a = mgr.create(builder()).unwrap();
        mgr.close(a).unwrap();
        let b = mgr.create(builder()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_round_trip_preserves_the_skyline() {
        use crate::{FromJson, ToJson};
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        // advance the session one full cycle so the snapshot carries an
        // evolved flow (pattern-inserted ops and/or config changes)
        mgr.explore(id).unwrap();
        mgr.select(id, 0).unwrap();
        let before = mgr.explore(id).unwrap();

        // snapshot → JSON text → restore (through the real wire form)
        let text = mgr.snapshot().to_json_string();
        let snapshot = crate::ManagerSnapshot::from_json_str(&text).unwrap();
        let restored = SessionManager::from_snapshot(&snapshot, builder).unwrap();

        assert_eq!(restored.ids(), vec![id]);
        assert_eq!(restored.history(id).unwrap(), mgr.history(id).unwrap());
        // the restored session re-explores to an identical frontier
        let after = restored.explore(id).unwrap();
        assert_eq!(after.skyline, before.skyline);
        assert_eq!(after.baseline, before.baseline);
        // …and can select from it, continuing the iteration mid-stream
        let record = restored.select(id, 0).unwrap();
        assert_eq!(record.cycle, 2);
    }

    #[test]
    fn snapshot_session_matches_the_full_snapshot_entry() {
        let mgr = SessionManager::new();
        let a = mgr.create(builder()).unwrap();
        let b = mgr.create(builder()).unwrap();
        mgr.explore(b).unwrap();
        mgr.select(b, 0).unwrap();
        let full = mgr.snapshot();
        for id in [a, b] {
            let single = mgr.snapshot_session(id).unwrap();
            let entry = full.sessions.iter().find(|s| s.id == id.raw()).unwrap();
            assert_eq!(&single, entry);
        }
        mgr.close(a).unwrap();
        assert_eq!(
            mgr.snapshot_session(a),
            Err(PoiesisError::UnknownSession(a))
        );
    }

    #[test]
    fn snapshot_excludes_the_inflight_outcome() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        mgr.explore(id).unwrap();
        let restored = SessionManager::from_snapshot(&mgr.snapshot(), builder).unwrap();
        // select before a fresh explore is the documented 409, not a replay
        assert_eq!(
            restored.select(id, 0),
            Err(PoiesisError::NothingExplored(id))
        );
    }

    #[test]
    fn restored_managers_never_reissue_snapshot_handles() {
        let mgr = SessionManager::new();
        let a = mgr.create(builder()).unwrap();
        let b = mgr.create(builder()).unwrap();
        mgr.close(a).unwrap();
        let restored = SessionManager::from_snapshot(&mgr.snapshot(), builder).unwrap();
        let c = restored.create(builder()).unwrap();
        assert!(c > b, "fresh handle {c} must exceed restored {b}");
    }

    #[test]
    fn corrupt_snapshots_fail_loudly() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        let mut snapshot = mgr.snapshot();
        snapshot.sessions[0].flow_xlm = "<not-xlm/>".to_string();
        assert!(matches!(
            SessionManager::from_snapshot(&snapshot, builder),
            Err(PoiesisError::Snapshot(_))
        ));
        // restoring onto an occupied handle is rejected, not overwritten
        let good = mgr.snapshot();
        assert!(matches!(
            mgr.restore(&good.sessions[0], builder()),
            Err(PoiesisError::Snapshot(ref m)) if m.contains(&id.raw().to_string())
        ));
    }
}
