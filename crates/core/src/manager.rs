//! Handle-based, thread-safe session management — the unit a future
//! network service will wrap.
//!
//! The ROADMAP's north star is a system "serving heavy traffic from
//! millions of users"; the paper's GUI holds exactly one iterative session.
//! A [`SessionManager`] bridges the two: it owns many concurrent
//! [`Session`]s behind opaque [`SessionId`] handles and exposes the whole
//! iterative loop (`create` → `explore` → `select` → `history` → `close`)
//! over serializable DTOs. Internally the registry is a read-write-locked
//! handle map of individually mutex-guarded slots, so sessions on
//! *distinct* handles explore and select fully in parallel — the registry
//! lock is only held for the microseconds of handle lookup, never across a
//! planning cycle.

use crate::api::{PlanRequest, PlanResponse};
use crate::builder::SessionBuilder;
use crate::error::PoiesisError;
use crate::planner::PlannerOutcome;
use crate::session::{IterationRecord, Session};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Opaque handle to a managed session. Serializable via
/// [`raw`](Self::raw) / [`from_raw`](Self::from_raw) for wire use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The wire representation of the handle.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from its wire representation. The handle is only
    /// meaningful to the manager that issued it; unknown handles surface
    /// as [`PoiesisError::UnknownSession`].
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One managed session plus the outcome of its latest exploration (kept so
/// a subsequent `select` can integrate a frontier design by rank).
struct Slot {
    session: Session,
    last_outcome: Option<PlannerOutcome>,
}

/// Thread-safe owner of many concurrent redesign sessions.
///
/// ```
/// use poiesis::{Poiesis, SessionManager};
/// use datagen::fig2::{purchases_catalog, purchases_flow};
/// use datagen::DirtProfile;
///
/// let manager = SessionManager::new();
/// let (flow, _) = purchases_flow();
/// let catalog = purchases_catalog(80, &DirtProfile::demo(), 5);
/// let id = manager
///     .create(Poiesis::session().flow(flow).catalog(catalog).budget(200))
///     .unwrap();
///
/// let frontier = manager.explore(id).unwrap();   // one planning cycle
/// assert!(!frontier.skyline.is_empty());
/// let record = manager.select(id, 0).unwrap();   // integrate rank 0
/// assert_eq!(record.cycle, 1);
/// assert_eq!(manager.history(id).unwrap().len(), 1);
/// manager.close(id).unwrap();
/// ```
#[derive(Default)]
pub struct SessionManager {
    slots: RwLock<HashMap<u64, Arc<Mutex<Slot>>>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// An empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Validates `builder` and registers the resulting session, returning
    /// its handle.
    pub fn create(&self, builder: SessionBuilder) -> Result<SessionId, PoiesisError> {
        let session = builder.build()?;
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let slot = Arc::new(Mutex::new(Slot {
            session,
            last_outcome: None,
        }));
        self.slots
            .write()
            .expect("session registry")
            .insert(id.raw(), slot);
        Ok(id)
    }

    /// Convenience: applies a wire [`PlanRequest`] on top of `builder`
    /// (which supplies flow/catalog) and registers the session.
    pub fn create_from_request(
        &self,
        builder: SessionBuilder,
        request: &PlanRequest,
    ) -> Result<SessionId, PoiesisError> {
        self.create(request.apply(builder)?)
    }

    /// Handles of all live sessions, ascending.
    pub fn ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .slots
            .read()
            .expect("session registry")
            .keys()
            .map(|&k| SessionId(k))
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.slots.read().expect("session registry").len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs one planning cycle on the session, keeps the outcome for a
    /// later `select`, and returns the frontier as a wire DTO.
    pub fn explore(&self, id: SessionId) -> Result<PlanResponse, PoiesisError> {
        let slot = self.slot(id)?;
        let mut slot = slot.lock().expect("session slot");
        let outcome = slot.session.explore()?;
        let response =
            PlanResponse::from_outcome(&outcome, slot.session.objective(), Some(id.raw()));
        slot.last_outcome = Some(outcome);
        Ok(response)
    }

    /// Integrates the frontier design at `rank` (0 = best objective) of
    /// the session's latest exploration, ending the cycle.
    pub fn select(&self, id: SessionId, rank: usize) -> Result<IterationRecord, PoiesisError> {
        let slot = self.slot(id)?;
        let mut slot = slot.lock().expect("session slot");
        // take() — the outcome describes the pre-selection flow, so it is
        // consumed by the selection: a fresh explore must precede the next
        // select.
        let outcome = slot
            .last_outcome
            .take()
            .ok_or(PoiesisError::NothingExplored(id))?;
        let frontier = outcome.skyline_ranked().len();
        match slot.session.select(&outcome, rank) {
            Some(record) => Ok(record.clone()),
            None => {
                // rank out of range: the outcome is still valid, put it back
                let err = PoiesisError::RankOutOfRange { rank, frontier };
                slot.last_outcome = Some(outcome);
                Err(err)
            }
        }
    }

    /// The session's completed iterations.
    pub fn history(&self, id: SessionId) -> Result<Vec<IterationRecord>, PoiesisError> {
        let slot = self.slot(id)?;
        let slot = slot.lock().expect("session slot");
        Ok(slot.session.history().to_vec())
    }

    /// Closes the session, dropping its state. Subsequent calls with the
    /// handle fail with [`PoiesisError::UnknownSession`].
    pub fn close(&self, id: SessionId) -> Result<(), PoiesisError> {
        self.slots
            .write()
            .expect("session registry")
            .remove(&id.raw())
            .map(|_| ())
            .ok_or(PoiesisError::UnknownSession(id))
    }

    /// Clones the slot handle out of the registry so the registry lock is
    /// released before any long-running work.
    fn slot(&self, id: SessionId) -> Result<Arc<Mutex<Slot>>, PoiesisError> {
        self.slots
            .read()
            .expect("session registry")
            .get(&id.raw())
            .cloned()
            .ok_or(PoiesisError::UnknownSession(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Poiesis;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;

    fn builder() -> SessionBuilder {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(120, &DirtProfile::demo(), 5);
        Poiesis::session().flow(f).catalog(cat).budget(400)
    }

    #[test]
    fn full_lifecycle_over_handles() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        assert_eq!(mgr.ids(), vec![id]);

        let response = mgr.explore(id).unwrap();
        assert_eq!(response.session, Some(id.raw()));
        assert!(!response.skyline.is_empty());

        let record = mgr.select(id, 0).unwrap();
        assert_eq!(record.cycle, 1);
        assert_eq!(record.selected, response.skyline[0].name);
        assert_eq!(mgr.history(id).unwrap().len(), 1);

        mgr.close(id).unwrap();
        assert!(mgr.is_empty());
        assert_eq!(mgr.explore(id), Err(PoiesisError::UnknownSession(id)));
    }

    #[test]
    fn select_requires_a_fresh_exploration() {
        let mgr = SessionManager::new();
        let id = mgr.create(builder()).unwrap();
        assert_eq!(mgr.select(id, 0), Err(PoiesisError::NothingExplored(id)));
        let response = mgr.explore(id).unwrap();
        let frontier = response.skyline.len();
        assert_eq!(
            mgr.select(id, 10_000),
            Err(PoiesisError::RankOutOfRange {
                rank: 10_000,
                frontier
            })
        );
        // an in-range rank still works: the outcome was put back
        mgr.select(id, 0).unwrap();
        // ... but is consumed by the successful selection
        assert_eq!(mgr.select(id, 0), Err(PoiesisError::NothingExplored(id)));
    }

    #[test]
    fn handles_are_never_reused() {
        let mgr = SessionManager::new();
        let a = mgr.create(builder()).unwrap();
        mgr.close(a).unwrap();
        let b = mgr.create(builder()).unwrap();
        assert_ne!(a, b);
    }
}
