//! Pattern application (Fig. 3, second stage): materialise an alternative
//! flow by applying a combination of candidates to a fork of the base flow.

use crate::generate::Candidate;
use etl_model::EtlFlow;
use fcp::{ApplicationPoint, AppliedPattern, PatternError};

/// Applies a combination of candidates to a fork of `base`, named `name`.
///
/// Structural (node/edge) applications run before graph-level ones so that
/// graph patterns see the final topology. Within the structural group,
/// applications run in candidate order — stable ids make this safe: an
/// interposition keeps the original edge id alive and a node replacement
/// preserves boundary edges, so later candidates' points stay valid unless
/// genuinely conflicting, in which case the pattern itself reports
/// [`PatternError::NotApplicable`] and the whole combination is discarded.
pub fn apply_combination(
    base: &EtlFlow,
    combo: &[&Candidate],
    name: impl Into<String>,
) -> Result<(EtlFlow, Vec<AppliedPattern>), PatternError> {
    let mut flow = base.fork(name);
    let mut applied = Vec::with_capacity(combo.len());
    let (structural, graph_level): (Vec<&Candidate>, Vec<&Candidate>) = combo
        .iter()
        .copied()
        .partition(|c| c.point != ApplicationPoint::Graph);
    for c in structural.into_iter().chain(graph_level) {
        applied.push(c.pattern.apply(&mut flow, c.point)?);
    }
    // Validity of the result is checked by the planner's static pre-screen
    // (`PlannerConfig::prescreen`), not asserted here: a pattern that breaks
    // the flow must surface as a counted rejection, never a panic.
    Ok((flow, applied))
}

/// Derives a deterministic alternative name from the combination.
pub fn combination_name(base: &EtlFlow, combo: &[&Candidate]) -> String {
    let mut parts: Vec<String> = combo.iter().map(|c| c.label()).collect();
    parts.sort();
    format!("{}+{}", base.name, parts.join("+"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uncapped;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;

    fn setup() -> (EtlFlow, Vec<Candidate>) {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        let cands = generate_uncapped(&f, &reg).unwrap();
        (f, cands)
    }

    #[test]
    fn single_candidate_application() {
        let (f, cands) = setup();
        let c = cands
            .iter()
            .find(|c| c.pattern.name() == "AddCheckpoint")
            .unwrap();
        let (alt, applied) = apply_combination(&f, &[c], "alt_1").unwrap();
        assert_eq!(alt.name, "alt_1");
        assert_eq!(applied.len(), 1);
        assert_eq!(alt.op_count(), f.op_count() + 1);
        alt.validate().unwrap();
        // base untouched
        assert_eq!(f.name, "s_purchases");
    }

    #[test]
    fn multi_pattern_combination() {
        let (f, cands) = setup();
        let cp = cands
            .iter()
            .find(|c| c.pattern.name() == "AddCheckpoint")
            .unwrap();
        let par = cands
            .iter()
            .find(|c| c.pattern.name() == "ParallelizeTask")
            .unwrap();
        let enc = cands
            .iter()
            .find(|c| c.pattern.name() == "EncryptChannels")
            .unwrap();
        let (alt, applied) = apply_combination(&f, &[cp, par, enc], "combo").unwrap();
        assert_eq!(applied.len(), 3);
        // +1 checkpoint, +3 parallelize (partition+2 replicas+merge−original)
        assert_eq!(alt.op_count(), f.op_count() + 4);
        assert!(alt.config.encrypted);
        alt.validate().unwrap();
    }

    #[test]
    fn checkpoint_on_edge_into_parallelized_node_still_works() {
        // Apply a checkpoint on the edge feeding DERIVE VALUES, then
        // parallelize DERIVE VALUES: the retargeted boundary edge must keep
        // the checkpoint upstream and the combination stays valid.
        let (f, cands) = setup();
        let (flow0, ids) = purchases_flow();
        drop(flow0);
        let into_derive = f.graph.in_edges(ids.derive_values).next().unwrap();
        let cp = cands
            .iter()
            .find(|c| {
                c.pattern.name() == "AddCheckpoint"
                    && c.point == fcp::ApplicationPoint::Edge(into_derive)
            })
            .expect("checkpoint candidate on the derive's in-edge");
        let par = cands
            .iter()
            .find(|c| {
                c.pattern.name() == "ParallelizeTask"
                    && c.point == fcp::ApplicationPoint::Node(ids.derive_values)
            })
            .unwrap();
        let (alt, _) = apply_combination(&f, &[cp, par], "cp_then_par").unwrap();
        alt.validate().unwrap();
        assert_eq!(alt.ops_of_kind("checkpoint").len(), 1);
        assert_eq!(alt.ops_of_kind("partition").len(), 1);
    }

    #[test]
    fn conflicting_combination_reports_not_applicable() {
        let (f, cands) = setup();
        // two ParallelizeTask on the same node = same point; the explorer
        // filters these, but apply must also fail safe.
        let par: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.pattern.name() == "ParallelizeTask")
            .collect();
        assert!(!par.is_empty());
        let c = par[0];
        let err = apply_combination(&f, &[c, c], "dup").unwrap_err();
        assert!(matches!(err, PatternError::NotApplicable { .. }));
    }

    #[test]
    fn names_are_deterministic_and_order_insensitive() {
        let (f, cands) = setup();
        let a = &cands[0];
        let b = cands
            .iter()
            .find(|c| c.pattern.name() != a.pattern.name())
            .unwrap();
        assert_eq!(combination_name(&f, &[a, b]), combination_name(&f, &[b, a]));
    }
}
