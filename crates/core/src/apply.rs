//! Pattern application (Fig. 3, second stage): materialise an alternative
//! flow by applying a combination of candidates to a fork of the base flow.

use crate::generate::Candidate;
use etl_model::{EtlFlow, SchemaTable};
use fcp::{ApplicationPoint, AppliedPattern, PatternContext, PatternError};

/// Applies a combination of candidates to a fork of `base`, named `name`.
///
/// Structural (node/edge) applications run before graph-level ones so that
/// graph patterns see the final topology. Within the structural group,
/// applications run in candidate order — stable ids make this safe: an
/// interposition keeps the original edge id alive and a node replacement
/// preserves boundary edges, so later candidates' points stay valid unless
/// genuinely conflicting, in which case the pattern itself reports
/// [`PatternError::NotApplicable`] and the whole combination is discarded.
pub fn apply_combination(
    base: &EtlFlow,
    combo: &[&Candidate],
    name: impl Into<String>,
) -> Result<(EtlFlow, Vec<AppliedPattern>), PatternError> {
    let mut flow = base.fork(name);
    let mut applied = Vec::with_capacity(combo.len());
    let (structural, graph_level): (Vec<&Candidate>, Vec<&Candidate>) = combo
        .iter()
        .copied()
        .partition(|c| c.point != ApplicationPoint::Graph);
    for c in structural.into_iter().chain(graph_level) {
        applied.push(c.pattern.apply(&mut flow, c.point)?);
    }
    // Validity of the result is checked by the planner's static pre-screen
    // (`PlannerConfig::prescreen`), not asserted here: a pattern that breaks
    // the flow must surface as a counted rejection, never a panic.
    Ok((flow, applied))
}

/// How [`apply_combination_incremental`]'s carried schema table ended up
/// after the last application.
pub enum CarriedTable {
    /// The table is exact for the returned flow — structurally equal to
    /// `propagate_schemas(&flow)`. Callers can skip schema re-validation.
    Exact {
        /// The fork's final schema table.
        table: SchemaTable,
        /// The fork's copy-on-write delta against the base, as of the last
        /// application — shared so callers don't recompute it.
        cow: etl_model::CowDelta,
    },
    /// The combination broke schema propagation; a full screen of the
    /// returned flow would report this error (or a structural one).
    Broken(etl_model::SchemaError),
}

/// The incremental counterpart of [`apply_combination`]: identical result,
/// O(patch) instead of O(flow) per application.
///
/// `base_schemas` is `base`'s schema table, computed once per planning
/// cycle. The fork starts with an `Arc`-shared clone of that table; after
/// each application the table is repaired in place via
/// [`etl_model::repair_table`], seeded from the nodes that application
/// added — O(patch) for schema-passthrough patterns, O(downstream of the
/// patch) only when schemas genuinely changed. Each candidate's full
/// [`Pattern::applicable`](fcp::Pattern::applicable) check runs against the
/// carried table (built-ins add conjunctive schema conditions beyond their
/// declared prerequisites), then
/// [`Pattern::apply_unchecked`](fcp::Pattern::apply_unchecked) performs the
/// structural edit without rebuilding an O(flow) context. If a repair gives
/// up or errors mid-combination, the table is rebuilt by a topologically
/// ordered [`etl_model::propagate_schemas_delta`] — repair's worklist may
/// transiently mix settled and unsettled inputs at a confluence, so only
/// the ordered rebuild's verdict counts. Application order and failure
/// behaviour match [`apply_combination`] exactly — the planner's
/// equivalence tests assert bit-identical alternatives and rejection
/// counts. The returned [`CarriedTable`] reports whether the final table is
/// exact, letting the post-screen skip schema propagation entirely.
pub fn apply_combination_incremental(
    base: &EtlFlow,
    combo: &[&Candidate],
    name: impl Into<String>,
    base_schemas: &SchemaTable,
) -> Result<(EtlFlow, Vec<AppliedPattern>, CarriedTable), PatternError> {
    let mut flow = base.fork(name);
    let mut applied = Vec::with_capacity(combo.len());
    let (structural, graph_level): (Vec<&Candidate>, Vec<&Candidate>) = combo
        .iter()
        .copied()
        .partition(|c| c.point != ApplicationPoint::Graph);
    let mut table = base_schemas.clone();
    // Seeds for repairing the table after the previous application. A
    // pattern that opts into `patch_confined_to_added_nodes` lets us seed
    // the repair from just the nodes it added — no delta derivation at all.
    // Otherwise the fork's cumulative copy-on-write delta is the sound seed
    // set for *any* mutation (an application that edits an operation in
    // place unshares its slot, so it is touched even though it added no
    // nodes).
    enum Seeds {
        Confined(Vec<etl_model::NodeId>),
        Cumulative,
    }
    // Full rebuild when a repair gives up (patch-created cycle) or hits an
    // error: repair's worklist may transiently mix settled and unsettled
    // inputs at a confluence, so only the topologically ordered rebuild's
    // verdict counts.
    let rebuild = |flow: &EtlFlow, table: &mut SchemaTable| -> Result<(), etl_model::SchemaError> {
        *table = etl_model::propagate_schemas_delta(flow, base_schemas, &flow.delta_since(base))?;
        Ok(())
    };
    let mut pending: Option<Seeds> = None;
    for c in structural.into_iter().chain(graph_level) {
        match pending.take() {
            None => {}
            Some(Seeds::Confined(seeds)) => {
                let repaired = etl_model::repair_table(&flow, &mut table, &seeds);
                if !matches!(repaired, Ok(true)) {
                    rebuild(&flow, &mut table).map_err(|e| PatternError::Graph(e.to_string()))?;
                }
            }
            Some(Seeds::Cumulative) => {
                let cow = flow.delta_since(base);
                if !matches!(
                    etl_model::repair_table(&flow, &mut table, &cow.touched_nodes),
                    Ok(true)
                ) {
                    table = etl_model::propagate_schemas_delta(&flow, base_schemas, &cow)
                        .map_err(|e| PatternError::Graph(e.to_string()))?;
                }
            }
        }
        let ctx = PatternContext::with_schemas(&flow, table);
        if !c.pattern.applicable(&ctx, c.point) {
            return Err(PatternError::NotApplicable {
                pattern: c.pattern.name().to_string(),
                point: c.point.describe(&flow),
            });
        }
        table = ctx.into_schemas();
        let a = c.pattern.apply_unchecked(&mut flow, c.point, &table)?;
        pending = Some(if c.pattern.patch_confined_to_added_nodes() {
            Seeds::Confined(a.added_nodes.clone())
        } else {
            Seeds::Cumulative
        });
        applied.push(a);
    }
    // The final repair: the fork's delta is derived once regardless (the
    // caller needs it for screening and delta estimation), but confined
    // seeds still pay off by keeping the repair worklist to the last patch.
    let cow = flow.delta_since(base);
    let exact = match pending {
        None => true,
        Some(Seeds::Confined(seeds)) => {
            matches!(etl_model::repair_table(&flow, &mut table, &seeds), Ok(true))
        }
        Some(Seeds::Cumulative) => matches!(
            etl_model::repair_table(&flow, &mut table, &cow.touched_nodes),
            Ok(true)
        ),
    };
    let carried = if exact {
        CarriedTable::Exact { table, cow }
    } else {
        match etl_model::propagate_schemas_delta(&flow, base_schemas, &cow) {
            Ok(t) => CarriedTable::Exact { table: t, cow },
            Err(e) => CarriedTable::Broken(e),
        }
    };
    Ok((flow, applied, carried))
}

/// Derives a deterministic alternative name from the combination.
///
/// Convenience wrapper that re-derives every label on each call; hot paths
/// (the planner walks up to hundreds of thousands of combinations per
/// cycle) build a [`LabelTable`] once and use [`LabelTable::name`].
pub fn combination_name(base: &EtlFlow, combo: &[&Candidate]) -> String {
    let mut parts: Vec<String> = combo.iter().map(|c| c.label()).collect();
    parts.sort();
    format!("{}+{}", base.name, parts.join("+"))
}

/// Per-cycle candidate label table: every candidate's
/// `"Pattern@point"` label plus its rank in the global label sort order,
/// computed once so that naming a combination needs only an integer sort
/// and one string allocation — no label re-derivation, no string
/// comparisons per combination.
pub struct LabelTable {
    labels: Vec<String>,
    rank: Vec<usize>,
}

impl LabelTable {
    /// Derives and ranks the labels of `candidates` (indices align).
    pub fn new(candidates: &[Candidate]) -> Self {
        let labels: Vec<String> = candidates.iter().map(|c| c.label()).collect();
        let mut order: Vec<usize> = (0..labels.len()).collect();
        order.sort_by(|&a, &b| labels[a].cmp(&labels[b]));
        let mut rank = vec![0usize; labels.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }
        LabelTable { labels, rank }
    }

    /// The alternative name for a combination given as candidate indices.
    /// Produces exactly the string [`combination_name`] would: ranks are
    /// assigned by a stable label sort, so ordering indices by rank orders
    /// their labels; equal labels join identically in either order.
    pub fn name(&self, base: &EtlFlow, combo: &[usize]) -> String {
        let mut idx: Vec<usize> = combo.to_vec();
        idx.sort_unstable_by_key(|&i| self.rank[i]);
        let mut s = String::with_capacity(
            base.name.len() + idx.iter().map(|&i| self.labels[i].len() + 1).sum::<usize>(),
        );
        s.push_str(&base.name);
        for &i in &idx {
            s.push('+');
            s.push_str(&self.labels[i]);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uncapped;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;

    fn setup() -> (EtlFlow, Vec<Candidate>) {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        let cands = generate_uncapped(&f, &reg).unwrap();
        (f, cands)
    }

    #[test]
    fn single_candidate_application() {
        let (f, cands) = setup();
        let c = cands
            .iter()
            .find(|c| c.pattern.name() == "AddCheckpoint")
            .unwrap();
        let (alt, applied) = apply_combination(&f, &[c], "alt_1").unwrap();
        assert_eq!(alt.name, "alt_1");
        assert_eq!(applied.len(), 1);
        assert_eq!(alt.op_count(), f.op_count() + 1);
        alt.validate().unwrap();
        // base untouched
        assert_eq!(f.name, "s_purchases");
    }

    #[test]
    fn multi_pattern_combination() {
        let (f, cands) = setup();
        let cp = cands
            .iter()
            .find(|c| c.pattern.name() == "AddCheckpoint")
            .unwrap();
        let par = cands
            .iter()
            .find(|c| c.pattern.name() == "ParallelizeTask")
            .unwrap();
        let enc = cands
            .iter()
            .find(|c| c.pattern.name() == "EncryptChannels")
            .unwrap();
        let (alt, applied) = apply_combination(&f, &[cp, par, enc], "combo").unwrap();
        assert_eq!(applied.len(), 3);
        // +1 checkpoint, +3 parallelize (partition+2 replicas+merge−original)
        assert_eq!(alt.op_count(), f.op_count() + 4);
        assert!(alt.config.encrypted);
        alt.validate().unwrap();
    }

    #[test]
    fn checkpoint_on_edge_into_parallelized_node_still_works() {
        // Apply a checkpoint on the edge feeding DERIVE VALUES, then
        // parallelize DERIVE VALUES: the retargeted boundary edge must keep
        // the checkpoint upstream and the combination stays valid.
        let (f, cands) = setup();
        let (flow0, ids) = purchases_flow();
        drop(flow0);
        let into_derive = f.graph.in_edges(ids.derive_values).next().unwrap();
        let cp = cands
            .iter()
            .find(|c| {
                c.pattern.name() == "AddCheckpoint"
                    && c.point == fcp::ApplicationPoint::Edge(into_derive)
            })
            .expect("checkpoint candidate on the derive's in-edge");
        let par = cands
            .iter()
            .find(|c| {
                c.pattern.name() == "ParallelizeTask"
                    && c.point == fcp::ApplicationPoint::Node(ids.derive_values)
            })
            .unwrap();
        let (alt, _) = apply_combination(&f, &[cp, par], "cp_then_par").unwrap();
        alt.validate().unwrap();
        assert_eq!(alt.ops_of_kind("checkpoint").len(), 1);
        assert_eq!(alt.ops_of_kind("partition").len(), 1);
    }

    #[test]
    fn conflicting_combination_reports_not_applicable() {
        let (f, cands) = setup();
        // two ParallelizeTask on the same node = same point; the explorer
        // filters these, but apply must also fail safe.
        let par: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.pattern.name() == "ParallelizeTask")
            .collect();
        assert!(!par.is_empty());
        let c = par[0];
        let err = apply_combination(&f, &[c, c], "dup").unwrap_err();
        assert!(matches!(err, PatternError::NotApplicable { .. }));
    }

    #[test]
    fn names_are_deterministic_and_order_insensitive() {
        let (f, cands) = setup();
        let a = &cands[0];
        let b = cands
            .iter()
            .find(|c| c.pattern.name() != a.pattern.name())
            .unwrap();
        assert_eq!(combination_name(&f, &[a, b]), combination_name(&f, &[b, a]));
    }

    #[test]
    fn label_table_names_match_combination_name() {
        let (f, cands) = setup();
        let table = LabelTable::new(&cands);
        // singletons, pairs and a triple, in both orders
        let b = cands
            .iter()
            .position(|c| c.pattern.name() != cands[0].pattern.name())
            .unwrap();
        let combos: Vec<Vec<usize>> = vec![
            vec![0],
            vec![b],
            vec![0, b],
            vec![b, 0],
            vec![0, b, cands.len() - 1],
        ];
        for combo in combos {
            let refs: Vec<&Candidate> = combo.iter().map(|&i| &cands[i]).collect();
            assert_eq!(table.name(&f, &combo), combination_name(&f, &refs));
        }
    }
}
