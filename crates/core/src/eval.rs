//! Measures estimation (Fig. 3, third stage): score every alternative flow
//! concurrently.
//!
//! The paper: "the processing and analysis of the alternative process
//! designs is a process intensive task, mainly due to the large number of
//! alternative flows that have to be concurrently evaluated. Therefore, we
//! employ Amazon Cloud elastic infrastructures, by launching processing
//! nodes that run in the background". The laptop-scale substitution is a
//! `std::thread::scope` worker pool; the concurrency-sweep bench measures
//! its scaling.

use datagen::Catalog;
use etl_model::EtlFlow;
use quality::{Characteristic, MeasureVector, SourceStats};
use simulator::{simulate, SimConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How each alternative is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Analytic estimation (fast; the planner default, matching the
    /// paper's "estimated measures").
    Estimate,
    /// Full simulation over the catalog (slow, exact; used for final
    /// verification of a selected design).
    Simulate,
}

/// One evaluated alternative design.
#[derive(Debug, Clone)]
pub struct Alternative {
    /// Alternative name (base name + pattern labels).
    pub name: String,
    /// The materialised flow.
    pub flow: EtlFlow,
    /// Human-readable descriptions of the applied patterns.
    pub applied: Vec<String>,
    /// Indices into the planner's candidate list.
    pub combo: Vec<usize>,
    /// The measure vector.
    pub measures: MeasureVector,
    /// Characteristic scores versus the baseline (same order as the
    /// planner's `dimensions`); the scatter-plot coordinates.
    pub scores: Vec<f64>,
}

/// Evaluates one flow in the requested mode.
pub fn evaluate_flow(
    flow: &EtlFlow,
    catalog: &Catalog,
    stats: &HashMap<String, SourceStats>,
    mode: EvalMode,
    seed: u64,
) -> Result<MeasureVector, simulator::SimError> {
    match mode {
        EvalMode::Estimate => Ok(quality::estimate(flow, stats)),
        EvalMode::Simulate => {
            let trace = simulate(
                flow,
                catalog,
                &SimConfig {
                    seed,
                    inject_failures: false,
                },
            )?;
            Ok(quality::evaluate(flow, &trace))
        }
    }
}

/// Order-preserving parallel map over `0..n` on a scoped worker pool:
/// workers pull indices from a shared atomic cursor and own their results
/// outright until the channel is drained after the scope — no per-slot
/// locking. `workers <= 1` (or `n <= 1`) degenerates to a sequential loop.
/// Shared by [`evaluate_pool`] and the planner's streaming engine.
pub(crate) fn par_map_indexed<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, f(i))).expect("receiver outlives the scope");
            });
        }
    });
    drop(tx);
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(n, || None);
    for (i, r) in rx {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index mapped"))
        .collect()
}

/// Evaluates many flows on a scoped worker pool, preserving input order.
///
/// `workers == 1` degenerates to sequential evaluation (the baseline of the
/// concurrency sweep).
pub fn evaluate_pool<F>(
    flows: &[F],
    catalog: &Catalog,
    stats: &HashMap<String, SourceStats>,
    mode: EvalMode,
    workers: usize,
    seed: u64,
) -> Vec<Result<MeasureVector, simulator::SimError>>
where
    F: AsRef<EtlFlow> + Sync,
{
    par_map_indexed(flows.len(), workers, |i| {
        evaluate_flow(flows[i].as_ref(), catalog, stats, mode, seed)
    })
}

/// Computes characteristic scores for the scatter-plot axes.
pub fn characteristic_scores(
    measures: &MeasureVector,
    baseline: &MeasureVector,
    dimensions: &[Characteristic],
) -> Vec<f64> {
    dimensions
        .iter()
        .map(|&c| measures.characteristic_score(baseline, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use quality::{source_stats, MeasureId};

    fn setup() -> (EtlFlow, Catalog, HashMap<String, SourceStats>) {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(200, &DirtProfile::demo(), 1);
        let stats = source_stats(&cat);
        (f, cat, stats)
    }

    struct FlowBox(EtlFlow);
    impl AsRef<EtlFlow> for FlowBox {
        fn as_ref(&self) -> &EtlFlow {
            &self.0
        }
    }

    #[test]
    fn estimate_and_simulate_modes_fill_measures() {
        let (f, cat, stats) = setup();
        for mode in [EvalMode::Estimate, EvalMode::Simulate] {
            let v = evaluate_flow(&f, &cat, &stats, mode, 7).unwrap();
            assert!(v.get(MeasureId::CycleTimeMs).unwrap() > 0.0, "{mode:?}");
            assert!(v.get(MeasureId::Completeness).is_some(), "{mode:?}");
        }
    }

    #[test]
    fn pool_preserves_order_and_matches_sequential() {
        let (f, cat, stats) = setup();
        let flows: Vec<FlowBox> = (0..20)
            .map(|i| {
                let mut g = f.fork(format!("v{i}"));
                // vary the flows slightly so results differ
                if i % 2 == 0 {
                    g.config.encrypted = true;
                }
                FlowBox(g)
            })
            .collect();
        let seq = evaluate_pool(&flows, &cat, &stats, EvalMode::Estimate, 1, 3);
        let par = evaluate_pool(&flows, &cat, &stats, EvalMode::Estimate, 4, 3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.get(MeasureId::CycleTimeMs), b.get(MeasureId::CycleTimeMs));
        }
        // encrypted variants are slower — order preserved means alternating
        let c0 = par[0]
            .as_ref()
            .unwrap()
            .get(MeasureId::CycleTimeMs)
            .unwrap();
        let c1 = par[1]
            .as_ref()
            .unwrap()
            .get(MeasureId::CycleTimeMs)
            .unwrap();
        assert!(c0 > c1);
    }

    #[test]
    fn scores_against_self_are_100() {
        let (f, cat, stats) = setup();
        let v = evaluate_flow(&f, &cat, &stats, EvalMode::Estimate, 7).unwrap();
        let dims = [
            Characteristic::Performance,
            Characteristic::DataQuality,
            Characteristic::Reliability,
        ];
        let s = characteristic_scores(&v, &v, &dims);
        for x in s {
            assert!((x - 100.0).abs() < 1e-9);
        }
    }
}
