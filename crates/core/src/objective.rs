//! First-class, user-defined quality objectives.
//!
//! The paper's pitch is *quality-goal-driven* redesign: "the user-defined
//! prioritization of goals, as well as the set of constraints based on
//! estimated measures" steer which alternatives are generated and how they
//! are ranked. Historically that intent was implicit — the planner summed
//! characteristic scores and hoped the weights were all equal. An
//! [`Objective`] makes it explicit: an ordered list of weighted, directed
//! [`Goal`]s (one per scatter-plot axis) plus hard [`MeasureConstraint`]s
//! such as "latency must not regress". It is consumed everywhere a scalar
//! ranking used to be improvised:
//!
//! * the skyline operates on the goal axes, [oriented](Objective::oriented)
//!   so `Minimize` goals dominate downwards;
//! * [`scalarize`](Objective::scalarize) replaces the implicit score-sum in
//!   frontier ranking, [`Session::auto_run`](crate::Session::auto_run)
//!   selection and the steering signal fed back to the
//!   [`Beam`](crate::Beam) / [`GreedyHillClimb`](crate::GreedyHillClimb)
//!   strategies;
//! * [`admits`](Objective::admits) rejects alternatives that violate a hard
//!   constraint, on top of the deployment policy's own constraints.

use crate::error::PoiesisError;
use fcp::MeasureConstraint;
use quality::{Characteristic, MeasureId, MeasureVector};

/// Which way a goal pushes its characteristic score.
/// Characteristic scores are *already* orientation-normalized improvement
/// ratios (baseline = 100, larger = better — for `Cost` a score above 100
/// means *cheaper*, because
/// [`improvement_ratio`](quality::MeasureVector::improvement_ratio) flips
/// lower-is-better measures). So "find the cheapest design" is
/// `Maximize` on `Cost`, possibly with a large weight. `Minimize` inverts
/// the preference on an axis: it hunts designs that concede the
/// characteristic — useful for adversarial exploration ("what does the
/// frontier look like from the other side?", "which designs sacrifice
/// manageability, and what do they buy with it?"), not for optimizing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger characteristic scores (= more improvement over the baseline)
    /// are preferred — the usual case for every characteristic.
    Maximize,
    /// Smaller characteristic scores (= less improvement / more
    /// regression) are preferred on this axis.
    Minimize,
}

/// One weighted, directed quality goal — a scatter-plot axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goal {
    /// The characteristic this goal tracks.
    pub characteristic: Characteristic,
    /// Relative importance in the scalar ranking (must be finite and
    /// positive; it never affects Pareto dominance, only ordering).
    pub weight: f64,
    /// Whether the goal races up or down.
    pub direction: Direction,
}

/// A user's quality objective: goals (the skyline axes, in order) and hard
/// measure constraints every presented design must satisfy.
///
/// ```
/// use poiesis::Objective;
/// use quality::{Characteristic, MeasureId};
///
/// let objective = Objective::new()
///     .weighted(Characteristic::Performance, 2.0) // perf counts double
///     .maximize(Characteristic::DataQuality)
///     .constrain(MeasureId::AvgLatencyMs, 1.2);   // ≤ 1.2× the baseline
/// objective.validate().unwrap();
///
/// // the ranking scalar is the weighted sum over the goal axes
/// assert_eq!(objective.scalarize(&[110.0, 95.0]), 2.0 * 110.0 + 95.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    goals: Vec<Goal>,
    constraints: Vec<MeasureConstraint>,
}

impl Objective {
    /// An empty objective; add goals with [`maximize`](Self::maximize) /
    /// [`minimize`](Self::minimize) / [`weighted`](Self::weighted).
    pub fn new() -> Self {
        Objective {
            goals: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The historical default: performance, data quality and reliability,
    /// equally weighted, all maximized — exactly the paper's Fig. 4 axes
    /// (and bit-for-bit the old implicit score-sum ranking).
    pub fn balanced() -> Self {
        Objective::new()
            .maximize(Characteristic::Performance)
            .maximize(Characteristic::DataQuality)
            .maximize(Characteristic::Reliability)
    }

    /// Adds a weight-1 maximizing goal for `c`.
    pub fn maximize(self, c: Characteristic) -> Self {
        self.weighted(c, 1.0)
    }

    /// Adds a weight-1 minimizing goal for `c` — preferring designs that
    /// *concede* the characteristic (see [`Direction`]: scores are already
    /// orientation-normalized, so to optimize e.g. cost use
    /// [`maximize`](Self::maximize)`(Cost)`, not this).
    pub fn minimize(mut self, c: Characteristic) -> Self {
        self.goals.push(Goal {
            characteristic: c,
            weight: 1.0,
            direction: Direction::Minimize,
        });
        self
    }

    /// Adds a maximizing goal for `c` with an explicit ranking weight.
    pub fn weighted(mut self, c: Characteristic, weight: f64) -> Self {
        self.goals.push(Goal {
            characteristic: c,
            weight,
            direction: Direction::Maximize,
        });
        self
    }

    /// Adds a fully specified goal.
    pub fn goal(mut self, goal: Goal) -> Self {
        self.goals.push(goal);
        self
    }

    /// Adds the hard constraint that `measure` must not regress past
    /// `ratio_vs_baseline` (e.g. `CycleTimeMs` at `1.0` = "latency must not
    /// regress"; see [`MeasureConstraint`] for ratio semantics).
    pub fn constrain(mut self, measure: MeasureId, ratio_vs_baseline: f64) -> Self {
        self.constraints.push(MeasureConstraint {
            measure,
            ratio_vs_baseline,
        });
        self
    }

    /// The goals, in axis order.
    pub fn goals(&self) -> &[Goal] {
        &self.goals
    }

    /// The hard measure constraints.
    pub fn constraints(&self) -> &[MeasureConstraint] {
        &self.constraints
    }

    /// The skyline axes, in order.
    pub fn characteristics(&self) -> Vec<Characteristic> {
        self.goals.iter().map(|g| g.characteristic).collect()
    }

    /// Number of goal axes.
    pub fn dims(&self) -> usize {
        self.goals.len()
    }

    /// Checks the objective is usable: at least one goal, finite positive
    /// weights, no duplicate characteristic, positive finite constraint
    /// ratios.
    pub fn validate(&self) -> Result<(), PoiesisError> {
        if self.goals.is_empty() {
            return Err(PoiesisError::InvalidObjective(
                "an objective needs at least one goal".into(),
            ));
        }
        for g in &self.goals {
            if !(g.weight.is_finite() && g.weight > 0.0) {
                return Err(PoiesisError::InvalidObjective(format!(
                    "goal `{}` has non-positive weight {}",
                    g.characteristic, g.weight
                )));
            }
        }
        for (i, g) in self.goals.iter().enumerate() {
            if self.goals[..i]
                .iter()
                .any(|h| h.characteristic == g.characteristic)
            {
                return Err(PoiesisError::InvalidObjective(format!(
                    "characteristic `{}` appears in two goals",
                    g.characteristic
                )));
            }
        }
        for c in &self.constraints {
            if !(c.ratio_vs_baseline.is_finite() && c.ratio_vs_baseline > 0.0) {
                return Err(PoiesisError::InvalidObjective(format!(
                    "constraint on `{}` has non-positive ratio {}",
                    c.measure, c.ratio_vs_baseline
                )));
            }
        }
        Ok(())
    }

    /// Orients raw characteristic scores (axis order = goal order) into
    /// maximize-space: `Minimize` axes are negated, so the skyline's
    /// larger-is-better dominance applies unchanged.
    pub fn oriented(&self, scores: &[f64]) -> Vec<f64> {
        debug_assert_eq!(scores.len(), self.goals.len());
        self.goals
            .iter()
            .zip(scores)
            .map(|(g, &s)| match g.direction {
                Direction::Maximize => s,
                Direction::Minimize => -s,
            })
            .collect()
    }

    /// The scalar ranking objective: the weighted sum of oriented scores.
    /// With the [`balanced`](Self::balanced) default this is exactly the
    /// historical score-sum.
    pub fn scalarize(&self, scores: &[f64]) -> f64 {
        debug_assert_eq!(scores.len(), self.goals.len());
        self.goals
            .iter()
            .zip(scores)
            .map(|(g, &s)| {
                g.weight
                    * match g.direction {
                        Direction::Maximize => s,
                        Direction::Minimize => -s,
                    }
            })
            .sum()
    }

    /// True when `alt` satisfies every hard constraint against `baseline`.
    pub fn admits(&self, baseline: &MeasureVector, alt: &MeasureVector) -> bool {
        self.constraints.iter().all(|c| c.satisfied(baseline, alt))
    }
}

impl Default for Objective {
    fn default() -> Self {
        Objective::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_replicates_the_legacy_score_sum() {
        let o = Objective::balanced();
        assert_eq!(
            o.characteristics(),
            vec![
                Characteristic::Performance,
                Characteristic::DataQuality,
                Characteristic::Reliability
            ]
        );
        let scores = [120.0, 95.5, 101.0];
        assert_eq!(o.scalarize(&scores), scores.iter().sum::<f64>());
        assert_eq!(o.oriented(&scores), scores.to_vec());
        o.validate().unwrap();
    }

    #[test]
    fn weights_and_directions_shape_the_scalar() {
        let o = Objective::new()
            .weighted(Characteristic::Performance, 3.0)
            .minimize(Characteristic::Cost);
        assert_eq!(o.scalarize(&[100.0, 50.0]), 3.0 * 100.0 - 50.0);
        assert_eq!(o.oriented(&[100.0, 50.0]), vec![100.0, -50.0]);
    }

    #[test]
    fn validation_rejects_degenerate_objectives() {
        let empty = Objective::new();
        assert!(matches!(
            empty.validate(),
            Err(PoiesisError::InvalidObjective(_))
        ));
        let zero = Objective::new().weighted(Characteristic::Performance, 0.0);
        assert!(matches!(
            zero.validate(),
            Err(PoiesisError::InvalidObjective(msg)) if msg.contains("weight")
        ));
        let dup = Objective::balanced().maximize(Characteristic::Performance);
        assert!(matches!(
            dup.validate(),
            Err(PoiesisError::InvalidObjective(msg)) if msg.contains("two goals")
        ));
        let bad_constraint = Objective::balanced().constrain(MeasureId::CycleTimeMs, f64::INFINITY);
        assert!(bad_constraint.validate().is_err());
    }

    #[test]
    fn constraints_gate_admission() {
        let o = Objective::balanced().constrain(MeasureId::CycleTimeMs, 1.0);
        let mut base = MeasureVector::new();
        base.set(MeasureId::CycleTimeMs, 100.0);
        let mut slower = MeasureVector::new();
        slower.set(MeasureId::CycleTimeMs, 150.0);
        let mut faster = MeasureVector::new();
        faster.set(MeasureId::CycleTimeMs, 80.0);
        assert!(!o.admits(&base, &slower), "latency regressed");
        assert!(o.admits(&base, &faster));
        assert!(
            Objective::balanced().admits(&base, &slower),
            "unconstrained"
        );
    }
}
