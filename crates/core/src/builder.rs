//! The goal-driven facade entry point: [`Poiesis::session`] and the
//! validating [`SessionBuilder`].
//!
//! The paper's architecture (Fig. 3) hands the Planner an initial flow and
//! "user-defined configurations"; our public API used to demand callers
//! hand-assemble `Planner::new(flow, catalog, registry, config)` and then
//! wrap it in a `Session`. The builder collapses that dance into one
//! validated, discoverable chain:
//!
//! ```
//! use poiesis::{Beam, Objective, Poiesis};
//! use datagen::{fig2, DirtProfile};
//! use quality::Characteristic;
//!
//! let (flow, _) = fig2::purchases_flow();
//! let catalog = fig2::purchases_catalog(150, &DirtProfile::demo(), 42);
//! let mut session = Poiesis::session()
//!     .flow(flow)
//!     .catalog(catalog)
//!     .objective(
//!         Objective::new()
//!             .weighted(Characteristic::Performance, 2.0)
//!             .maximize(Characteristic::DataQuality)
//!             .maximize(Characteristic::Reliability),
//!     )
//!     .strategy(Beam { width: 8 })
//!     .build()
//!     .unwrap();
//! let outcome = session.explore().unwrap();
//! assert!(!outcome.skyline.is_empty());
//! ```
//!
//! `build` rejects unusable inputs up front ([`PoiesisError::MissingFlow`],
//! [`PoiesisError::MissingCatalog`], [`PoiesisError::EmptyCatalog`],
//! [`PoiesisError::InvalidObjective`], [`PoiesisError::InvalidFlow`])
//! instead of letting them surface mid-cycle. The pattern registry is
//! optional: when omitted, the standard palette for the catalog is used.

use crate::error::PoiesisError;
use crate::eval::EvalMode;
use crate::objective::Objective;
use crate::planner::{Planner, PlannerConfig};
use crate::search::SearchStrategyKind;
use crate::session::Session;
use datagen::Catalog;
use etl_model::EtlFlow;
use fcp::{DeploymentPolicy, PatternRegistry};

/// The facade namespace: `Poiesis::session()` starts a builder chain.
pub struct Poiesis;

impl Poiesis {
    /// Starts building an iterative redesign session — the documented
    /// entry point of the crate.
    pub fn session() -> SessionBuilder {
        SessionBuilder::new()
    }
}

/// Validating builder for [`Session`]s (and the [`Planner`]s inside them).
#[derive(Clone, Default)]
pub struct SessionBuilder {
    flow: Option<EtlFlow>,
    catalog: Option<Catalog>,
    registry: Option<PatternRegistry>,
    config: PlannerConfig,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // PatternRegistry holds trait objects; show what is set, not bodies
        f.debug_struct("SessionBuilder")
            .field("flow", &self.flow.as_ref().map(|fl| &fl.name))
            .field("catalog_tables", &self.catalog.as_ref().map(Catalog::len))
            .field("registry", &self.registry.is_some())
            .field("config", &self.config)
            .finish()
    }
}

impl SessionBuilder {
    /// An empty builder with the default configuration.
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Seeds every configuration knob from an existing [`PlannerConfig`]
    /// (how the legacy `Planner::new` routes through the builder).
    pub fn from_config(config: PlannerConfig) -> Self {
        SessionBuilder {
            config,
            ..SessionBuilder::default()
        }
    }

    /// The initial ETL flow to redesign (required).
    pub fn flow(mut self, flow: EtlFlow) -> Self {
        self.flow = Some(flow);
        self
    }

    /// The source catalog the flow reads from (required, non-empty).
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// The pattern palette (optional; defaults to
    /// [`PatternRegistry::standard_for_catalog`]).
    pub fn registry(mut self, registry: PatternRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The quality objective: goal axes, ranking weights/directions and
    /// hard constraints.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.config.objective = objective;
        self
    }

    /// The deployment policy (pattern selection, combination depth, caps).
    pub fn policy(mut self, policy: DeploymentPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// How the combination space is walked. Accepts any built-in strategy
    /// value (`Exhaustive`, `Beam { width }`, `GreedyHillClimb`) or a
    /// [`SearchStrategyKind`] directly.
    pub fn strategy(mut self, strategy: impl Into<SearchStrategyKind>) -> Self {
        self.config.strategy = strategy.into();
        self
    }

    /// Estimation vs. full simulation.
    pub fn eval_mode(mut self, mode: EvalMode) -> Self {
        self.config.eval_mode = mode;
        self
    }

    /// Worker threads for concurrent evaluation.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Hard cap on enumerated alternatives per cycle.
    pub fn budget(mut self, max_alternatives: usize) -> Self {
        self.config.max_alternatives = max_alternatives;
        self
    }

    /// Whether dominated alternatives are retained (`false` = O(frontier)
    /// memory).
    pub fn retain_dominated(mut self, retain: bool) -> Self {
        self.config.retain_dominated = retain;
        self
    }

    /// RNG seed for simulation-mode evaluation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The configuration accumulated so far (what
    /// [`build_planner`](Self::build_planner) will hand the planner).
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Validates the inputs and builds the planner behind the session.
    ///
    /// The base flow is gated by the full static analyzer: any
    /// error-severity diagnostic rejects the build with
    /// [`PoiesisError::Analysis`] carrying *every* finding (including
    /// warnings), so a client sees the whole lint report at once instead
    /// of fixing one problem per round trip.
    pub fn build_planner(self) -> Result<Planner, PoiesisError> {
        let flow = self.flow.ok_or(PoiesisError::MissingFlow)?;
        let diags = analysis::analyze(&flow);
        if analysis::has_errors(&diags) {
            return Err(PoiesisError::Analysis(diags));
        }
        let catalog = self.catalog.ok_or(PoiesisError::MissingCatalog)?;
        if catalog.is_empty() {
            return Err(PoiesisError::EmptyCatalog);
        }
        self.config.objective.validate()?;
        let registry = self
            .registry
            .unwrap_or_else(|| PatternRegistry::standard_for_catalog(&catalog));
        Ok(Planner::from_parts(flow, catalog, registry, self.config))
    }

    /// Validates the inputs and builds the session.
    pub fn build(self) -> Result<Session, PoiesisError> {
        Ok(Session::new(self.build_planner()?))
    }

    /// Unvalidated assembly for the legacy `Planner::new` path, which was
    /// always infallible (its errors surface at plan time). Panics only if
    /// flow or catalog were never provided — `Planner::new` always
    /// provides both.
    pub(crate) fn assemble_planner(self) -> Planner {
        let flow = self.flow.expect("assemble_planner requires a flow");
        let catalog = self.catalog.expect("assemble_planner requires a catalog");
        let registry = self
            .registry
            .unwrap_or_else(|| PatternRegistry::standard_for_catalog(&catalog));
        Planner::from_parts(flow, catalog, registry, self.config)
    }
}

impl From<crate::search::Exhaustive> for SearchStrategyKind {
    fn from(_: crate::search::Exhaustive) -> Self {
        SearchStrategyKind::Exhaustive
    }
}

impl From<crate::search::Beam> for SearchStrategyKind {
    fn from(b: crate::search::Beam) -> Self {
        SearchStrategyKind::Beam { width: b.width }
    }
}

impl From<crate::search::GreedyHillClimb> for SearchStrategyKind {
    fn from(_: crate::search::GreedyHillClimb) -> Self {
        SearchStrategyKind::GreedyHillClimb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use quality::Characteristic;

    fn flow_and_catalog() -> (EtlFlow, Catalog) {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(120, &DirtProfile::demo(), 5);
        (f, cat)
    }

    #[test]
    fn builder_constructs_a_working_session() {
        let (f, cat) = flow_and_catalog();
        let mut s = Poiesis::session()
            .flow(f)
            .catalog(cat)
            .strategy(crate::search::Beam { width: 8 })
            .budget(500)
            .build()
            .unwrap();
        let outcome = s.explore().unwrap();
        assert!(!outcome.skyline.is_empty());
        assert!(s.select(&outcome, 0).is_some());
    }

    #[test]
    fn missing_flow_is_rejected() {
        let (_, cat) = flow_and_catalog();
        let err = Poiesis::session().catalog(cat).build().unwrap_err();
        assert_eq!(err, PoiesisError::MissingFlow);
    }

    #[test]
    fn missing_and_empty_catalogs_are_rejected() {
        let (f, _) = flow_and_catalog();
        let err = Poiesis::session().flow(f.clone()).build().unwrap_err();
        assert_eq!(err, PoiesisError::MissingCatalog);
        let err = Poiesis::session()
            .flow(f)
            .catalog(Catalog::new())
            .build()
            .unwrap_err();
        assert_eq!(err, PoiesisError::EmptyCatalog);
    }

    #[test]
    fn invalid_objectives_are_rejected() {
        let (f, cat) = flow_and_catalog();
        let err = Poiesis::session()
            .flow(f)
            .catalog(cat)
            .objective(Objective::new().weighted(Characteristic::Performance, 0.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, PoiesisError::InvalidObjective(_)), "{err}");
    }

    #[test]
    fn invalid_flows_fail_at_build_time() {
        let (_, cat) = flow_and_catalog();
        // a flow with no operations is rejected by the static analyzer
        let err = Poiesis::session()
            .flow(EtlFlow::new("empty"))
            .catalog(cat)
            .build()
            .unwrap_err();
        match &err {
            PoiesisError::Analysis(diags) => {
                assert!(diags.iter().any(|d| d.code == analysis::codes::EMPTY_FLOW));
            }
            other => panic!("expected Analysis, got {other:?}"),
        }
        assert_eq!(err.code(), "analysis");
    }

    #[test]
    fn legacy_planner_new_still_works_and_routes_through_the_builder() {
        let (f, cat) = flow_and_catalog();
        let reg = PatternRegistry::standard_for_catalog(&cat);
        let p = Planner::new(f, cat, reg, PlannerConfig::default());
        assert!(p.plan().is_ok());
    }
}
