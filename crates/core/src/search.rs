//! Pluggable search strategies over the combination space.
//!
//! §2.2 calls the space "factorial to the size of the graph"; walking all
//! of it is only one option. A [`SearchStrategy`] decides *which*
//! combinations get evaluated and in what order, submitting them in batches
//! to a [`CombinationSink`] (the planner's streaming engine) that applies,
//! scores and skyline-filters them — so the strategy never sees a flow and
//! the engine never sees the walk order. Three scenario-diverse walkers are
//! built in:
//!
//! * [`Exhaustive`] — the whole space, lazily, via [`CombinationIter`];
//! * [`Beam`] — depth-by-depth, keeping only the `width` best-scoring
//!   partial combinations per depth (large spaces, bounded work);
//! * [`GreedyHillClimb`] — grows a single combination one pattern at a
//!   time, following the best improvement (cheapest, local optimum).

use crate::explore::{combination_valid, CombinationIter};
use crate::generate::Candidate;
use fcp::DeploymentPolicy;

/// How many combinations [`Exhaustive`] hands to the sink per batch: large
/// enough to amortise worker-pool spin-up, small enough to keep memory
/// O(batch) rather than O(space).
const SUBMIT_BATCH: usize = 2048;

/// The space a strategy walks: candidates, the policy constraining valid
/// combinations, and the evaluation budget.
pub struct SearchSpace<'a> {
    /// Candidate pattern applications (combinations index into this).
    pub candidates: &'a [Candidate],
    /// Policy caps (combination depth, per-pattern cap, point conflicts).
    pub policy: &'a DeploymentPolicy,
    /// Maximum number of combinations that may be submitted for evaluation.
    pub budget: usize,
}

/// Where strategies send work. Implemented by the planner's streaming
/// engine: each submitted combination is applied and evaluated (workers
/// pull from a shared cursor), scored against the baseline, offered to the
/// incremental skyline, and — per combination, in submission order — the
/// scalar objective (characteristic score sum) comes back, or `None` when
/// the combination failed application/evaluation or was rejected by policy
/// constraints. Scores give feedback-driven strategies (beam, greedy)
/// their steering signal.
pub trait CombinationSink {
    /// Evaluates a batch; `result[i]` corresponds to `combos[i]`.
    fn submit(&mut self, combos: &[Vec<usize>]) -> Vec<Option<f64>>;
}

/// What a strategy walked (feeds [`SpaceStats`](crate::explore::SpaceStats)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchReport {
    /// Combinations submitted for evaluation.
    pub enumerated: usize,
    /// Combinations (or partial extensions) discarded as invalid.
    pub conflicts: usize,
    /// True when the budget cut the walk short.
    pub truncated: bool,
}

/// A walk over the combination space.
pub trait SearchStrategy: Send + Sync {
    /// Strategy name for reports and sweep tables.
    fn name(&self) -> &str;
    /// Walks `space`, submitting combinations to `sink`.
    fn run(&self, space: &SearchSpace<'_>, sink: &mut dyn CombinationSink) -> SearchReport;
    /// Whether the walk steers by the per-combination objective scalars the
    /// sink returns (beam, greedy). Steering strategies cannot tolerate the
    /// engine silently skipping combinations — a skipped score would change
    /// the walk itself — so the planner's bound pruner only activates under
    /// strategies that return `false` here. Defaults to `true` (the
    /// conservative answer for user-defined walkers).
    fn uses_steering(&self) -> bool {
        true
    }
}

/// Serialisable strategy selector for [`PlannerConfig`](crate::PlannerConfig)
/// (the trait stays open for user-defined walkers via
/// [`Planner::plan_with`](crate::Planner::plan_with)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategyKind {
    /// Walk the whole space lazily.
    Exhaustive,
    /// Beam search keeping `width` partials per depth.
    Beam {
        /// Partial combinations kept per depth.
        width: usize,
    },
    /// Greedy single-path hill climb.
    GreedyHillClimb,
}

impl SearchStrategyKind {
    /// Builds the strategy this selector names.
    pub fn instantiate(&self) -> Box<dyn SearchStrategy> {
        match *self {
            SearchStrategyKind::Exhaustive => Box::new(Exhaustive),
            SearchStrategyKind::Beam { width } => Box::new(Beam { width }),
            SearchStrategyKind::GreedyHillClimb => Box::new(GreedyHillClimb),
        }
    }
}

impl std::fmt::Display for SearchStrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchStrategyKind::Exhaustive => write!(f, "exhaustive"),
            SearchStrategyKind::Beam { width } => write!(f, "beam:{width}"),
            SearchStrategyKind::GreedyHillClimb => write!(f, "greedy"),
        }
    }
}

impl std::str::FromStr for SearchStrategyKind {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) syntax back: `exhaustive`,
    /// `greedy`, `beam` (default width 16) or `beam:<width>`. One parser
    /// shared by the CLI flags and the wire DTOs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" => Ok(SearchStrategyKind::Exhaustive),
            "greedy" => Ok(SearchStrategyKind::GreedyHillClimb),
            "beam" => Ok(SearchStrategyKind::Beam { width: 16 }),
            _ => {
                if let Some(w) = s.strip_prefix("beam:") {
                    let width: usize = w.parse().map_err(|_| format!("bad beam width in `{s}`"))?;
                    if width == 0 {
                        return Err(format!("beam width must be positive in `{s}`"));
                    }
                    Ok(SearchStrategyKind::Beam { width })
                } else {
                    Err(format!("unknown strategy `{s}`"))
                }
            }
        }
    }
}

// ------------------------------------------------------------- exhaustive

/// Streams every valid combination (up to the budget) through the sink in
/// lazy batches — the full space, O(batch) memory.
pub struct Exhaustive;

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &str {
        "exhaustive"
    }

    /// The exhaustive walk ignores the returned scalars entirely, so the
    /// engine may skip provably-dominated combinations without changing it.
    fn uses_steering(&self) -> bool {
        false
    }

    fn run(&self, space: &SearchSpace<'_>, sink: &mut dyn CombinationSink) -> SearchReport {
        let mut iter = CombinationIter::new(space.candidates, space.policy, space.budget);
        loop {
            let batch: Vec<Vec<usize>> = iter.by_ref().take(SUBMIT_BATCH).collect();
            if batch.is_empty() {
                break;
            }
            sink.submit(&batch);
        }
        let stats = iter.stats();
        SearchReport {
            enumerated: stats.enumerated,
            conflicts: stats.conflicts,
            truncated: stats.truncated,
        }
    }
}

// ------------------------------------------------------------------- beam

/// Depth-by-depth beam search: evaluate all singletons, keep the `width`
/// best, extend each survivor with every higher-indexed candidate, and
/// repeat to the policy depth. Ascending-only extension guarantees each
/// subset is visited at most once.
pub struct Beam {
    /// Partial combinations kept per depth.
    pub width: usize,
}

impl SearchStrategy for Beam {
    fn name(&self) -> &str {
        "beam"
    }

    fn run(&self, space: &SearchSpace<'_>, sink: &mut dyn CombinationSink) -> SearchReport {
        let n = space.candidates.len();
        let depth = space.policy.combination_depth(n);
        let width = self.width.max(1);
        let mut report = SearchReport::default();
        if depth == 0 {
            return report;
        }
        let singles = valid_extensions(space, &mut report, std::iter::once(&Vec::new()));
        let mut beam = submit_scored(space, sink, &mut report, singles);
        beam.truncate(width);
        for _ in 2..=depth {
            if beam.is_empty() || report.truncated {
                break;
            }
            let extensions =
                valid_extensions(space, &mut report, beam.iter().map(|(combo, _)| combo));
            if extensions.is_empty() {
                break;
            }
            beam = submit_scored(space, sink, &mut report, extensions);
            beam.truncate(width);
        }
        report
    }
}

/// All valid one-candidate extensions of `parents`, each extension keeping
/// indices ascending (so no subset is generated twice); invalid extensions
/// are counted as conflicts.
fn valid_extensions<'a>(
    space: &SearchSpace<'_>,
    report: &mut SearchReport,
    parents: impl Iterator<Item = &'a Vec<usize>>,
) -> Vec<Vec<usize>> {
    let n = space.candidates.len();
    let mut out = Vec::new();
    for parent in parents {
        let start = parent.last().map_or(0, |&last| last + 1);
        for j in start..n {
            let mut child = parent.clone();
            child.push(j);
            let refs: Vec<&Candidate> = child.iter().map(|&i| &space.candidates[i]).collect();
            if combination_valid(&refs, space.policy) {
                out.push(child);
            } else {
                report.conflicts += 1;
            }
        }
    }
    out
}

/// Submits `combos` (clipped to the remaining budget), pairing each with
/// its objective; returns the scored survivors sorted best-first.
fn submit_scored(
    space: &SearchSpace<'_>,
    sink: &mut dyn CombinationSink,
    report: &mut SearchReport,
    mut combos: Vec<Vec<usize>>,
) -> Vec<(Vec<usize>, f64)> {
    let remaining = space.budget.saturating_sub(report.enumerated);
    if combos.len() > remaining {
        combos.truncate(remaining);
        report.truncated = true;
    }
    if combos.is_empty() {
        return Vec::new();
    }
    report.enumerated += combos.len();
    let scores = sink.submit(&combos);
    let mut scored: Vec<(Vec<usize>, f64)> = combos
        .into_iter()
        .zip(scores)
        .filter_map(|(combo, score)| score.map(|s| (combo, s)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored
}

// ----------------------------------------------------------------- greedy

/// Greedy hill climb: start from the best singleton and repeatedly add the
/// candidate whose inclusion improves the objective most, stopping at the
/// policy depth or a local optimum. Evaluates O(n · depth) combinations.
pub struct GreedyHillClimb;

impl SearchStrategy for GreedyHillClimb {
    fn name(&self) -> &str {
        "greedy"
    }

    fn run(&self, space: &SearchSpace<'_>, sink: &mut dyn CombinationSink) -> SearchReport {
        let n = space.candidates.len();
        let depth = space.policy.combination_depth(n);
        let mut report = SearchReport::default();
        if depth == 0 {
            return report;
        }
        let singles = valid_extensions(space, &mut report, std::iter::once(&Vec::new()));
        let mut best = match submit_scored(space, sink, &mut report, singles)
            .into_iter()
            .next()
        {
            Some(b) => b,
            None => return report,
        };
        while best.0.len() < depth && !report.truncated {
            // try inserting every absent candidate, keeping indices sorted
            // so names and apply order stay canonical
            let mut moves = Vec::new();
            for j in 0..n {
                if best.0.binary_search(&j).is_ok() {
                    continue;
                }
                let mut child = best.0.clone();
                let at = child.binary_search(&j).unwrap_err();
                child.insert(at, j);
                let refs: Vec<&Candidate> = child.iter().map(|&i| &space.candidates[i]).collect();
                if combination_valid(&refs, space.policy) {
                    moves.push(child);
                } else {
                    report.conflicts += 1;
                }
            }
            let Some(step) = submit_scored(space, sink, &mut report, moves)
                .into_iter()
                .next()
            else {
                break;
            };
            if step.1 <= best.1 {
                break; // local optimum
            }
            best = step;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uncapped;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;
    use std::collections::HashSet;

    fn candidates() -> Vec<Candidate> {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        generate_uncapped(&f, &reg).unwrap()
    }

    /// A sink that records submissions and scores a combo by the sum of its
    /// candidate fitnesses (deterministic, no flows involved).
    struct FitnessSink<'a> {
        candidates: &'a [Candidate],
        seen: Vec<Vec<usize>>,
    }

    impl CombinationSink for FitnessSink<'_> {
        fn submit(&mut self, combos: &[Vec<usize>]) -> Vec<Option<f64>> {
            let scores = combos
                .iter()
                .map(|c| Some(c.iter().map(|&i| self.candidates[i].fitness).sum()))
                .collect();
            self.seen.extend_from_slice(combos);
            scores
        }
    }

    fn run(
        strategy: &dyn SearchStrategy,
        policy: &DeploymentPolicy,
        budget: usize,
    ) -> (Vec<Vec<usize>>, SearchReport) {
        let cands = candidates();
        let space = SearchSpace {
            candidates: &cands,
            policy,
            budget,
        };
        let mut sink = FitnessSink {
            candidates: &cands,
            seen: Vec::new(),
        };
        let report = strategy.run(&space, &mut sink);
        (sink.seen, report)
    }

    #[test]
    fn exhaustive_submits_exactly_the_lazy_enumeration() {
        let policy = DeploymentPolicy::exhaustive(2);
        let (seen, report) = run(&Exhaustive, &policy, usize::MAX);
        let cands = candidates();
        let (eager, stats) = crate::explore::enumerate_combinations(&cands, &policy, usize::MAX);
        assert_eq!(seen, eager);
        assert_eq!(report.enumerated, stats.enumerated);
        assert_eq!(report.conflicts, stats.conflicts);
        assert!(!report.truncated);
    }

    #[test]
    fn beam_visits_no_subset_twice_and_respects_budget() {
        let policy = DeploymentPolicy::exhaustive(3);
        let (seen, report) = run(&Beam { width: 5 }, &policy, usize::MAX);
        let unique: HashSet<&Vec<usize>> = seen.iter().collect();
        assert_eq!(unique.len(), seen.len(), "no duplicate submissions");
        assert_eq!(report.enumerated, seen.len());
        // a tight budget truncates
        let (seen_tight, report_tight) = run(&Beam { width: 5 }, &policy, 10);
        assert_eq!(seen_tight.len(), 10);
        assert!(report_tight.truncated);
    }

    #[test]
    fn beam_explores_depth_layers() {
        let policy = DeploymentPolicy::exhaustive(3);
        let (seen, _) = run(&Beam { width: 4 }, &policy, usize::MAX);
        for k in 1..=3usize {
            assert!(
                seen.iter().any(|c| c.len() == k),
                "beam never reached depth {k}"
            );
        }
        // every submitted combo is sorted ascending (canonical form)
        for c in &seen {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "{c:?} not canonical");
        }
    }

    #[test]
    fn greedy_follows_improvements_to_a_local_optimum() {
        let policy = DeploymentPolicy::exhaustive(3);
        let (seen, report) = run(&GreedyHillClimb, &policy, usize::MAX);
        let cands = candidates();
        // greedy is cheap: far fewer evaluations than the full space
        let (all, _) = crate::explore::enumerate_combinations(&cands, &policy, usize::MAX);
        assert!(
            seen.len() < all.len() / 2,
            "{} vs {}",
            seen.len(),
            all.len()
        );
        assert_eq!(report.enumerated, seen.len());
        // the deepest combo seen must score at least as well as any single
        let best_single = cands
            .iter()
            .map(|c| c.fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_seen = seen
            .iter()
            .map(|c| c.iter().map(|&i| cands[i].fitness).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best_seen >= best_single);
    }

    #[test]
    fn kind_roundtrips_to_strategies() {
        for (kind, name) in [
            (SearchStrategyKind::Exhaustive, "exhaustive"),
            (SearchStrategyKind::Beam { width: 8 }, "beam"),
            (SearchStrategyKind::GreedyHillClimb, "greedy"),
        ] {
            assert_eq!(kind.instantiate().name(), name);
        }
        assert_eq!(SearchStrategyKind::Beam { width: 8 }.to_string(), "beam:8");
    }

    #[test]
    fn kind_parses_its_own_display_syntax() {
        for kind in [
            SearchStrategyKind::Exhaustive,
            SearchStrategyKind::Beam { width: 8 },
            SearchStrategyKind::GreedyHillClimb,
        ] {
            assert_eq!(kind.to_string().parse::<SearchStrategyKind>(), Ok(kind));
        }
        assert_eq!(
            "beam".parse::<SearchStrategyKind>(),
            Ok(SearchStrategyKind::Beam { width: 16 })
        );
        assert!("beam:0".parse::<SearchStrategyKind>().is_err());
        assert!("beam:x".parse::<SearchStrategyKind>().is_err());
        assert!("dfs".parse::<SearchStrategyKind>().is_err());
    }

    #[test]
    fn empty_space_yields_empty_reports() {
        let policy = DeploymentPolicy::balanced();
        let space = SearchSpace {
            candidates: &[],
            policy: &policy,
            budget: 100,
        };
        for kind in [
            SearchStrategyKind::Exhaustive,
            SearchStrategyKind::Beam { width: 3 },
            SearchStrategyKind::GreedyHillClimb,
        ] {
            let mut sink = FitnessSink {
                candidates: &[],
                seen: Vec::new(),
            };
            let report = kind.instantiate().run(&space, &mut sink);
            assert_eq!(report, SearchReport::default(), "{kind}");
            assert!(sink.seen.is_empty());
        }
    }
}
