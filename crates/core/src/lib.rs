//! `poiesis` — **P**rocess **O**ptimization and **I**mprovement for **E**TL
//! **S**ystems and **I**ntegration **S**ervices.
//!
//! The paper's primary contribution: the *Planner* component of a
//! user-centred declarative ETL redesign architecture (Fig. 3). Given an
//! initial ETL flow and user-defined configurations, the Planner
//!
//! 1. **generates** Flow Component Patterns specific to the flow
//!    ([`generate`]): every FCP in the palette is checked against every
//!    potential application point — node, edge or whole graph;
//! 2. **applies** them in varying positions and combinations
//!    ([`explore`], [`apply`]), producing up to thousands of alternative
//!    ETL designs while keeping the data source schemata constant — the
//!    space is walked *lazily* by a pluggable [`search`] strategy
//!    (exhaustive, beam, greedy hill-climb), never materialised;
//! 3. **estimates measures** for various quality attributes for each
//!    alternative ([`eval`]) — analytically by default, by full simulation
//!    on demand — workers pull combinations from a shared cursor and
//!    evaluate them in place (the paper launches EC2 nodes; we use a
//!    thread pool);
//! 4. presents only the **Pareto frontier (skyline)** of the alternatives
//!    over the examined quality dimensions ([`skyline`]), maintained
//!    *incrementally during* evaluation by a [`SkylineSet`] so dominated
//!    designs can be dropped the moment they die, with per-flow
//!    relative-change reports against the initial flow (Fig. 5);
//! 5. runs **iteratively** ([`session`]): the user picks a point on the
//!    scatter-plot, the corresponding patterns are integrated into the
//!    process, and a new cycle commences.
//!
//! # Quickstart
//!
//! ```
//! use poiesis::{Planner, PlannerConfig};
//! use fcp::PatternRegistry;
//! use datagen::{fig2, DirtProfile};
//!
//! let (flow, _) = fig2::purchases_flow();
//! let catalog = fig2::purchases_catalog(200, &DirtProfile::demo(), 42);
//! let registry = PatternRegistry::standard_for_catalog(&catalog);
//! let planner = Planner::new(flow, catalog, registry, PlannerConfig::default());
//! let outcome = planner.plan().unwrap();
//! assert!(!outcome.skyline.is_empty());
//! for alt in outcome.skyline_alternatives().take(3) {
//!     println!("{}: {:?}", alt.name, alt.scores);
//! }
//! ```

pub mod apply;
pub mod baseline;
pub mod eval;
pub mod explore;
pub mod generate;
mod planner;
pub mod search;
pub mod session;
pub mod skyline;

pub use eval::{Alternative, EvalMode};
pub use explore::CombinationIter;
pub use generate::Candidate;
pub use planner::{Planner, PlannerConfig, PlannerError, PlannerOutcome};
pub use search::{
    Beam, CombinationSink, Exhaustive, GreedyHillClimb, SearchReport, SearchSpace, SearchStrategy,
    SearchStrategyKind,
};
pub use session::Session;
pub use skyline::{
    pareto_skyline, pareto_skyline_bnl, pareto_skyline_sorted, Insertion, SkylineSet,
};
