//! `poiesis` — **P**rocess **O**ptimization and **I**mprovement for **E**TL
//! **S**ystems and **I**ntegration **S**ervices.
//!
//! The paper's primary contribution: the *Planner* component of a
//! user-centred declarative ETL redesign architecture (Fig. 3). Given an
//! initial ETL flow and user-defined configurations, the Planner
//!
//! 1. **generates** Flow Component Patterns specific to the flow
//!    ([`generate`]): every FCP in the palette is checked against every
//!    potential application point — node, edge or whole graph;
//! 2. **applies** them in varying positions and combinations
//!    ([`explore`], [`apply`]), producing up to thousands of alternative
//!    ETL designs while keeping the data source schemata constant — the
//!    space is walked *lazily* by a pluggable [`search`] strategy
//!    (exhaustive, beam, greedy hill-climb), never materialised;
//! 3. **estimates measures** for various quality attributes for each
//!    alternative ([`eval`]) — analytically by default, by full simulation
//!    on demand — workers pull combinations from a shared cursor and
//!    evaluate them in place (the paper launches EC2 nodes; we use a
//!    thread pool);
//! 4. presents only the **Pareto frontier (skyline)** of the alternatives
//!    over the examined quality dimensions ([`skyline`]), maintained
//!    *incrementally during* evaluation by a [`SkylineSet`] so dominated
//!    designs can be dropped the moment they die, with per-flow
//!    relative-change reports against the initial flow (Fig. 5);
//! 5. runs **iteratively** ([`session`]): the user picks a point on the
//!    scatter-plot, the corresponding patterns are integrated into the
//!    process, and a new cycle commences.
//!
//! # Quickstart
//!
//! The documented entry point is the goal-driven facade:
//! [`Poiesis::session`] returns a validating [`SessionBuilder`], the
//! [`Objective`] states the user's quality goals, and the resulting
//! [`Session`] runs the iterative explore → select loop.
//!
//! ```
//! use poiesis::{Beam, Objective, Poiesis};
//! use datagen::{fig2, DirtProfile};
//! use quality::{Characteristic, MeasureId};
//!
//! let (flow, _) = fig2::purchases_flow();
//! let catalog = fig2::purchases_catalog(200, &DirtProfile::demo(), 42);
//! let mut session = Poiesis::session()
//!     .flow(flow)
//!     .catalog(catalog)
//!     .objective(
//!         Objective::balanced()
//!             .constrain(MeasureId::AvgLatencyMs, 1.5), // latency ≤ 1.5× baseline
//!     )
//!     .strategy(Beam { width: 8 })
//!     .build()
//!     .unwrap();
//! let outcome = session.explore().unwrap();
//! assert!(!outcome.skyline.is_empty());
//! for alt in outcome.skyline_alternatives().take(3) {
//!     println!("{}: {:?}", alt.name, alt.scores);
//! }
//! session.select(&outcome, 0).unwrap(); // integrate the best design
//! ```
//!
//! Many concurrent sessions live behind a thread-safe [`SessionManager`]
//! (opaque [`SessionId`] handles, serializable [`api`] DTOs) — the unit
//! the `poiesis-server` crate exposes over HTTP (see `docs/API.md` for
//! the wire contract). The legacy `Planner::new(flow, catalog, registry,
//! config)` constructor keeps working and routes through the builder
//! internally.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod apply;
pub mod baseline;
mod builder;
mod error;
pub mod eval;
pub mod explore;
pub mod generate;
pub mod manager;
pub mod objective;
mod planner;
pub mod search;
pub mod session;
pub mod skyline;

pub use api::{
    AlternativeSummary, ConstraintSpec, DiagnosticSpec, GoalSpec, LintReport, ManagerSnapshot,
    ObjectiveSpec, PlanRequest, PlanResponse, SessionSnapshot,
};
pub use builder::{Poiesis, SessionBuilder};
pub use error::PoiesisError;
pub use eval::{Alternative, EvalMode};
pub use explore::CombinationIter;
pub use generate::Candidate;
pub use manager::{SessionId, SessionManager};
pub use objective::{Direction, Goal, Objective};
pub use planner::{Planner, PlannerConfig, PlannerError, PlannerOutcome};
pub use search::{
    Beam, CombinationSink, Exhaustive, GreedyHillClimb, SearchReport, SearchSpace, SearchStrategy,
    SearchStrategyKind,
};
pub use serde::{FromJson, ToJson};
pub use session::{IterationRecord, Session};
pub use skyline::{
    pareto_skyline, pareto_skyline_bnl, pareto_skyline_sorted, Insertion, SkylineSet,
};
