//! Pareto frontier (skyline) computation over quality dimensions.
//!
//! §3: "The scatter-plot points presented to the user are only the Pareto
//! frontier (skyline) of the complete set of alternative designs … where
//! larger values are preferred to smaller ones. For one design ETL1, if
//! there exists at least one alternative design ETL2 offering the same or
//! better performance and data quality, and at the same time better
//! reliability, then ETL1 will not be presented to the user."
//!
//! Two algorithms are provided for the ablation bench: block-nested-loop
//! (the textbook quadratic) and a sort-first variant that is markedly
//! faster on skew-heavy inputs.

/// `a` dominates `b`: at least as good everywhere, strictly better
/// somewhere (larger is better on every axis).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Default skyline (currently the sorted variant). Returns the indices of
/// non-dominated points, ascending.
pub fn pareto_skyline(points: &[Vec<f64>]) -> Vec<usize> {
    pareto_skyline_sorted(points)
}

/// Block-nested-loop skyline: compare every point against every other.
pub fn pareto_skyline_bnl(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .collect()
}

/// Sort-filter skyline: process points in decreasing coordinate-sum order;
/// a point can only be dominated by one that precedes it in that order, so
/// each point is checked against the (small) running skyline only.
pub fn pareto_skyline_sorted(points: &[Vec<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        let sa: f64 = points[a].iter().sum();
        let sb: f64 = points[b].iter().sum();
        sb.total_cmp(&sa).then(a.cmp(&b))
    });
    let mut skyline: Vec<usize> = Vec::new();
    for &i in &order {
        if !skyline.iter().any(|&s| dominates(&points[s], &points[i])) {
            skyline.push(i);
        }
    }
    skyline.sort_unstable();
    skyline
}

/// Result of one [`SkylineSet::insert`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insertion {
    /// The point joined the frontier; `evicted` lists the ids of members it
    /// newly dominates (removed from the set, ascending).
    Accepted {
        /// Ids of the members the new point evicted, ascending.
        evicted: Vec<usize>,
    },
    /// The point is dominated by an existing member and was rejected.
    Dominated,
}

/// An incrementally maintained Pareto frontier: points stream in one at a
/// time, dominated arrivals are rejected on the spot and newly-dominated
/// members are evicted, so the frontier is correct *during* evaluation —
/// the planner never has to materialise the full point set.
///
/// Equal points follow the batch semantics of [`pareto_skyline_bnl`] /
/// [`pareto_skyline_sorted`]: they do not dominate each other, so
/// duplicates coexist on the frontier. For any insertion order, the final
/// id set equals the batch skyline of the same points (the frontier of a
/// set is unique) — `skyline_set_agrees_with_batch` below and the
/// cross-crate proptests hold both algorithms to that.
#[derive(Debug, Clone, Default)]
pub struct SkylineSet {
    members: Vec<(usize, Vec<f64>)>,
}

impl SkylineSet {
    /// An empty frontier.
    pub fn new() -> Self {
        SkylineSet::default()
    }

    /// Offers `(id, point)` to the frontier.
    pub fn insert(&mut self, id: usize, point: Vec<f64>) -> Insertion {
        if self.members.iter().any(|(_, p)| dominates(p, &point)) {
            return Insertion::Dominated;
        }
        let mut evicted = Vec::new();
        self.members.retain(|(mid, p)| {
            if dominates(&point, p) {
                evicted.push(*mid);
                false
            } else {
                true
            }
        });
        evicted.sort_unstable();
        self.members.push((id, point));
        Insertion::Accepted { evicted }
    }

    /// Ids of the current frontier members, ascending.
    pub fn ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.members.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids
    }

    /// Current frontier size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no point has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `(id, point)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        self.members.iter().map(|(id, p)| (*id, p.as_slice()))
    }

    /// True when some current member strictly dominates `point`. The
    /// planner's bound pruner asks this about a combination's *optimistic*
    /// score bound: a dominated bound proves the real (never better) point
    /// would be rejected too, so the combination can be skipped unevaluated.
    pub fn dominates_point(&self, point: &[f64]) -> bool {
        self.members.iter().any(|(_, p)| dominates(p, point))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[2.0, 1.0], &[1.0, 2.0]));
        assert!(
            !dominates(&[1.0, 1.0], &[1.0, 1.0]),
            "equal points don't dominate"
        );
        assert!(dominates(&[1.0, 1.0, 1.1], &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn paper_example_semantics() {
        // ETL2 same-or-better perf & DQ, strictly better reliability ⇒ ETL1 hidden
        let etl1 = vec![100.0, 100.0, 100.0];
        let etl2 = vec![100.0, 110.0, 120.0];
        let sky = pareto_skyline(&[etl1, etl2]);
        assert_eq!(sky, vec![1]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        let pts = vec![vec![3.0, 1.0], vec![2.0, 2.0], vec![1.0, 3.0]];
        assert_eq!(pareto_skyline(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn both_algorithms_agree_on_random_input() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for dims in [2, 3, 4] {
            let pts: Vec<Vec<f64>> = (0..300)
                .map(|_| (0..dims).map(|_| rng.gen_range(0.0..100.0)).collect())
                .collect();
            let bnl = pareto_skyline_bnl(&pts);
            let sorted = pareto_skyline_sorted(&pts);
            assert_eq!(bnl, sorted, "dims={dims}");
            // skyline is a small fraction of random points
            assert!(bnl.len() < pts.len());
            assert!(!bnl.is_empty());
        }
    }

    #[test]
    fn duplicates_all_kept() {
        // equal points don't dominate each other, so all stay
        let pts = vec![vec![1.0, 1.0]; 4];
        assert_eq!(pareto_skyline(&pts).len(), 4);
        assert_eq!(pareto_skyline_bnl(&pts).len(), 4);
    }

    #[test]
    fn empty_and_single() {
        assert!(pareto_skyline(&[]).is_empty());
        assert_eq!(pareto_skyline(&[vec![1.0]]), vec![0]);
    }

    #[test]
    fn skyline_set_rejects_dominated_and_evicts() {
        let mut s = SkylineSet::new();
        assert_eq!(
            s.insert(0, vec![1.0, 1.0]),
            Insertion::Accepted { evicted: vec![] }
        );
        // dominated arrival rejected on the spot
        assert_eq!(s.insert(1, vec![0.5, 0.5]), Insertion::Dominated);
        assert_eq!(s.len(), 1);
        // incomparable arrival coexists
        assert_eq!(
            s.insert(2, vec![2.0, 0.5]),
            Insertion::Accepted { evicted: vec![] }
        );
        // a dominating arrival evicts both
        assert_eq!(
            s.insert(3, vec![2.0, 1.0]),
            Insertion::Accepted {
                evicted: vec![0, 2]
            }
        );
        assert_eq!(s.ids(), vec![3]);
    }

    #[test]
    fn skyline_set_keeps_duplicates_like_batch() {
        let mut s = SkylineSet::new();
        for i in 0..4 {
            assert_eq!(
                s.insert(i, vec![1.0, 1.0]),
                Insertion::Accepted { evicted: vec![] }
            );
        }
        assert_eq!(s.ids(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn skyline_set_agrees_with_batch() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1234);
        for dims in [2usize, 3, 4] {
            let pts: Vec<Vec<f64>> = (0..400)
                .map(|_| (0..dims).map(|_| rng.gen_range(0.0..100.0)).collect())
                .collect();
            let mut set = SkylineSet::new();
            for (i, p) in pts.iter().enumerate() {
                set.insert(i, p.clone());
            }
            assert_eq!(set.ids(), pareto_skyline_bnl(&pts), "bnl dims={dims}");
            assert_eq!(set.ids(), pareto_skyline_sorted(&pts), "sorted dims={dims}");
            // reversed insertion order reaches the same frontier
            let mut rev = SkylineSet::new();
            for (i, p) in pts.iter().enumerate().rev() {
                rev.insert(i, p.clone());
            }
            assert_eq!(rev.ids(), set.ids(), "order-independent dims={dims}");
        }
    }
}
