//! Manual-redesign baselines.
//!
//! §1 motivates POIESIS by the failure modes of manual ETL redesign: "wrong
//! configuration of ETL operations, incomplete exploitation of quality
//! enhancement options and wrong placement of optimization patterns". To
//! quantify the claim (BASELINE experiment in DESIGN.md) we model a manual
//! engineer as a process that *samples* a bounded number of application
//! points instead of enumerating all of them, optionally ignoring the
//! placement heuristics.

use crate::eval::{characteristic_scores, evaluate_flow, EvalMode};
use crate::generate::{generate_uncapped, Candidate};
use crate::planner::{Planner, PlannerError};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How the simulated "manual" engineer works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManualStrategy {
    /// Considers a random subset of points, random placement (no
    /// heuristics): the §1 "wrong placement" failure mode.
    Random,
    /// Considers a random subset but places by fitness within it: a careful
    /// engineer who still cannot check every point ("incomplete
    /// exploitation").
    GreedySampled,
}

/// Result of one manual-baseline run.
#[derive(Debug, Clone)]
pub struct ManualOutcome {
    /// Fraction of all valid application points the engineer examined.
    pub coverage: f64,
    /// Scores (per planner dimension) of the best design found.
    pub best_scores: Vec<f64>,
    /// Sum of best scores (scalar for quick comparison).
    pub best_score_sum: f64,
    /// Number of designs the engineer tried.
    pub designs_tried: usize,
}

/// Simulates a manual redesign: the engineer examines at most `effort`
/// candidate placements (sampled per `strategy`), combines up to the same
/// depth as the planner policy, and keeps the best design found.
pub fn manual_redesign(
    planner: &Planner,
    strategy: ManualStrategy,
    effort: usize,
    seed: u64,
) -> Result<ManualOutcome, PlannerError> {
    let flow = planner.flow();
    let catalog = planner.catalog();
    let stats = quality::estimator::source_stats(catalog);
    let baseline = evaluate_flow(flow, catalog, &stats, EvalMode::Estimate, seed)
        .map_err(|e| PlannerError::Eval(e.to_string()))?;

    let all = generate_uncapped(flow, planner.registry())
        .map_err(|e| PlannerError::Pattern(e.to_string()))?;
    let objective = &planner.config().objective;
    if all.is_empty() {
        let best_scores = vec![100.0; objective.dims()];
        let best_score_sum = objective.scalarize(&best_scores);
        return Ok(ManualOutcome {
            coverage: 0.0,
            best_scores,
            best_score_sum,
            designs_tried: 0,
        });
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sampled: Vec<&Candidate> = all.iter().collect();
    sampled.shuffle(&mut rng);
    sampled.truncate(effort.min(all.len()));
    if strategy == ManualStrategy::GreedySampled {
        sampled.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
    }

    let depth = planner.config().policy.max_patterns_per_flow;
    let dims = objective.characteristics();
    let mut best_scores = vec![100.0; dims.len()];
    // the baseline design itself scores 100 on every axis
    let mut best_sum = objective.scalarize(&best_scores);
    let mut tried = 0usize;

    // The engineer tries single placements and one stacked combination —
    // a realistic bounded effort, far from exhaustive.
    let mut trials: Vec<Vec<&Candidate>> = sampled.iter().map(|c| vec![*c]).collect();
    if depth >= 2 && sampled.len() >= 2 {
        trials.push(sampled.iter().take(depth).copied().collect());
    }
    for combo in trials {
        let Ok((alt, _)) = crate::apply::apply_combination(flow, &combo, "manual_trial") else {
            continue; // a conflicting stack: the engineer gives up on it
        };
        let Ok(m) = evaluate_flow(&alt, catalog, &stats, EvalMode::Estimate, seed) else {
            continue;
        };
        tried += 1;
        let scores = characteristic_scores(&m, &baseline, &dims);
        let sum = objective.scalarize(&scores);
        if sum > best_sum {
            best_sum = sum;
            best_scores = scores;
        }
    }

    Ok(ManualOutcome {
        coverage: sampled.len() as f64 / all.len() as f64,
        best_scores,
        best_score_sum: best_sum,
        designs_tried: tried,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;
    use datagen::tpch::{tpch_catalog, tpch_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;

    fn planner() -> Planner {
        let (f, _) = tpch_flow();
        let cat = tpch_catalog(200, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        Planner::new(f, cat, reg, PlannerConfig::default())
    }

    #[test]
    fn manual_coverage_is_partial() {
        let p = planner();
        let m = manual_redesign(&p, ManualStrategy::Random, 5, 7).unwrap();
        assert!(m.coverage < 0.5, "manual effort must miss most points");
        assert!(m.designs_tried > 0);
    }

    #[test]
    fn planner_dominates_manual_baseline() {
        let p = planner();
        let out = p.plan().unwrap();
        let planner_best: f64 = out
            .skyline_alternatives()
            .next()
            .map(|a| a.scores.iter().sum())
            .unwrap();
        for strategy in [ManualStrategy::Random, ManualStrategy::GreedySampled] {
            // average manual performance over a few engineers
            let mut sum = 0.0;
            let trials = 5;
            for s in 0..trials {
                sum += manual_redesign(&p, strategy, 5, 100 + s)
                    .unwrap()
                    .best_score_sum;
            }
            let manual_avg = sum / trials as f64;
            assert!(
                planner_best >= manual_avg,
                "{strategy:?}: planner {planner_best} vs manual {manual_avg}"
            );
        }
    }

    #[test]
    fn greedy_beats_or_matches_random_on_average() {
        let p = planner();
        let (mut g, mut r) = (0.0, 0.0);
        let trials = 8;
        for s in 0..trials {
            g += manual_redesign(&p, ManualStrategy::GreedySampled, 6, 200 + s)
                .unwrap()
                .best_score_sum;
            r += manual_redesign(&p, ManualStrategy::Random, 6, 200 + s)
                .unwrap()
                .best_score_sum;
        }
        assert!(g >= r * 0.98, "greedy {g} vs random {r}");
    }
}
