//! The iterative redesign session.
//!
//! §3: "the redesign process takes place in an iterative, incremental and
//! intuitive fashion … the user makes a selection decision and the tool
//! implements this decision by integrating the corresponding patterns to
//! the existing process flow. Subsequently, new iteration cycles commence,
//! until the user considers that the flow adequately satisfies quality
//! goals."

use crate::planner::{Planner, PlannerError, PlannerOutcome};
use etl_model::EtlFlow;

/// Record of one completed iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (1-based).
    pub cycle: usize,
    /// Name of the selected alternative.
    pub selected: String,
    /// Patterns that were integrated.
    pub integrated: Vec<String>,
    /// Scores of the selected design against that cycle's baseline.
    pub scores: Vec<f64>,
}

/// An iterative redesign session wrapping a [`Planner`].
pub struct Session {
    planner: Planner,
    /// The user's original flow name, captured once at session start so
    /// per-cycle fork names are always `<base>__cycle<N>` — no string
    /// surgery on the evolving name (which broke for users whose flow name
    /// itself contained `"__cycle"`).
    base_name: String,
    history: Vec<IterationRecord>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // the planner's registry holds trait objects; summarise instead
        f.debug_struct("Session")
            .field("base_name", &self.base_name)
            .field("current_flow", &self.planner.flow().name)
            .field("cycles_completed", &self.history.len())
            .finish()
    }
}

impl Session {
    /// Starts a session on a planner.
    pub fn new(planner: Planner) -> Self {
        let base_name = planner.flow().name.clone();
        Session {
            planner,
            base_name,
            history: Vec::new(),
        }
    }

    /// Rebuilds a session from persisted state: a planner whose flow is
    /// the (possibly already-evolved) flow of a snapshot, the original
    /// `base_name` captured at session start, and the completed iteration
    /// history. The inverse of reading [`base_name`](Self::base_name),
    /// [`current_flow`](Self::current_flow) and [`history`](Self::history)
    /// out of a live session — which is exactly what
    /// [`SessionManager::snapshot`](crate::SessionManager::snapshot) does.
    pub fn restore(planner: Planner, base_name: String, history: Vec<IterationRecord>) -> Self {
        Session {
            planner,
            base_name,
            history,
        }
    }

    /// The user's original flow name, captured once at session start
    /// (fork names are always `<base_name>__cycle<N>`).
    pub fn base_name(&self) -> &str {
        &self.base_name
    }

    /// The current flow (after all integrations so far).
    pub fn current_flow(&self) -> &EtlFlow {
        self.planner.flow()
    }

    /// The wrapped planner (read access for reports, A/B comparisons and
    /// the legacy materialized pipeline).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The quality objective driving exploration and selection.
    pub fn objective(&self) -> &crate::objective::Objective {
        &self.planner.config().objective
    }

    /// Completed iterations.
    pub fn history(&self) -> &[IterationRecord] {
        &self.history
    }

    /// Runs one planning cycle (generation → application → estimation →
    /// skyline) without integrating anything yet.
    pub fn explore(&self) -> Result<PlannerOutcome, PlannerError> {
        self.planner.plan()
    }

    /// Like [`explore`](Self::explore) but with an explicit search
    /// strategy, e.g. a wide beam for a quick first look at a huge space
    /// followed by an exhaustive confirmation cycle.
    pub fn explore_with(
        &self,
        strategy: &dyn crate::search::SearchStrategy,
    ) -> Result<PlannerOutcome, PlannerError> {
        self.planner.plan_with(strategy)
    }

    /// Integrates the alternative at `skyline_rank` (0 = best objective on
    /// the frontier) of `outcome` into the process, ending the cycle.
    /// Returns the record, or `None` when the rank is out of range.
    pub fn select(
        &mut self,
        outcome: &PlannerOutcome,
        skyline_rank: usize,
    ) -> Option<&IterationRecord> {
        let alt = outcome.skyline_alternative(skyline_rank)?;
        let record = IterationRecord {
            cycle: self.history.len() + 1,
            selected: alt.name.clone(),
            integrated: alt.applied.clone(),
            scores: alt.scores.clone(),
        };
        self.planner.set_flow(
            alt.flow
                .fork(format!("{}__cycle{}", self.base_name, record.cycle)),
        );
        self.history.push(record);
        self.history.last()
    }

    /// Convenience loop: run `cycles` iterations, always selecting the
    /// frontier design that best satisfies the objective. Returns the
    /// history length.
    pub fn auto_run(&mut self, cycles: usize) -> Result<usize, PlannerError> {
        for _ in 0..cycles {
            let outcome = self.explore()?;
            if outcome.skyline.is_empty() {
                break;
            }
            self.select(&outcome, 0);
        }
        Ok(self.history.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;

    fn session() -> Session {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(150, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        Session::new(Planner::new(f, cat, reg, PlannerConfig::default()))
    }

    #[test]
    fn select_integrates_patterns_into_the_flow() {
        let mut s = session();
        let base_ops = s.current_flow().op_count();
        let outcome = s.explore().unwrap();
        let rec = s.select(&outcome, 0).unwrap();
        assert_eq!(rec.cycle, 1);
        assert!(!rec.selected.is_empty());
        // structural patterns grow the flow; graph-only selections keep size
        assert!(s.current_flow().op_count() >= base_ops);
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn explore_with_custom_strategy_feeds_selection() {
        let mut s = session();
        // quick beam pass instead of the configured exhaustive walk
        let outcome = s.explore_with(&crate::search::Beam { width: 4 }).unwrap();
        assert!(!outcome.skyline.is_empty());
        let rec = s.select(&outcome, 0).unwrap();
        assert_eq!(rec.cycle, 1);
    }

    #[test]
    fn out_of_range_rank_returns_none() {
        let mut s = session();
        let outcome = s.explore().unwrap();
        assert!(s.select(&outcome, 10_000).is_none());
        assert!(s.history().is_empty());
    }

    #[test]
    fn fork_names_derive_from_the_original_base_name() {
        // A user flow whose own name contains the fork marker must not be
        // mangled by selection (the old `split("__cycle")` hack truncated
        // it to "pipeline").
        let (mut f, _) = purchases_flow();
        f.name = "pipeline__cycle_test".to_string();
        let cat = purchases_catalog(150, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        let mut s = Session::new(Planner::new(f, cat, reg, PlannerConfig::default()));
        for expected in [
            "pipeline__cycle_test__cycle1",
            "pipeline__cycle_test__cycle2",
        ] {
            let outcome = s.explore().unwrap();
            s.select(&outcome, 0).unwrap();
            assert_eq!(s.current_flow().name, expected);
        }
    }

    #[test]
    fn select_by_rank_matches_the_ranked_iterator() {
        let mut s = session();
        let outcome = s.explore().unwrap();
        let rank = outcome.skyline_ranked().len().min(2).saturating_sub(1);
        let expect = outcome
            .skyline_alternatives()
            .nth(rank)
            .map(|a| a.name.clone())
            .unwrap();
        assert_eq!(
            outcome.skyline_alternative(rank).map(|a| a.name.clone()),
            Some(expect.clone())
        );
        let rec = s.select(&outcome, rank).unwrap();
        assert_eq!(rec.selected, expect);
    }

    #[test]
    fn iterative_cycles_compound_improvements() {
        let mut s = session();
        let n = s.auto_run(3).unwrap();
        assert_eq!(n, 3);
        // Each selected design improved at least one dimension over its
        // cycle baseline.
        for rec in s.history() {
            assert!(
                rec.scores.iter().any(|&x| x > 100.0),
                "cycle {} scores {:?}",
                rec.cycle,
                rec.scores
            );
        }
        // The flow accumulated pattern-inserted operations or config changes.
        let f = s.current_flow();
        let pattern_ops = f.count_ops(|op| op.from_pattern.is_some());
        assert!(
            pattern_ops > 0
                || f.config.encrypted
                || f.config.role_based_access
                || f.config.resources != etl_model::ResourceClass::Small,
            "three cycles must leave visible integrations"
        );
        f.validate().unwrap();
    }
}
