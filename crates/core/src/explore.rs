//! Combination exploration: the alternative-design space.
//!
//! §2.2: patterns are added "in varying positions and combinations", and
//! "the complexity of this analysis is factorial to the size of the graph".
//! This module enumerates k-subsets of the candidate list under the policy
//! caps, with an overall budget so the space stays tractable.

use crate::generate::Candidate;
use fcp::{ApplicationPoint, DeploymentPolicy};
use std::collections::HashMap;

/// Statistics of the (possibly truncated) exploration space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceStats {
    /// Number of single candidates.
    pub candidates: usize,
    /// Theoretical number of alternatives up to the policy depth (before
    /// conflict filtering and budget truncation).
    pub theoretical: f64,
    /// Combinations actually enumerated.
    pub enumerated: usize,
    /// Combinations discarded due to point/pattern conflicts.
    pub conflicts: usize,
    /// True when the budget cut enumeration short.
    pub truncated: bool,
}

/// A combination is invalid when two applications collide on the same
/// point, or a single pattern exceeds its per-alternative cap.
pub fn combination_valid(combo: &[&Candidate], policy: &DeploymentPolicy) -> bool {
    let mut per_pattern: HashMap<&str, usize> = HashMap::new();
    let mut points: Vec<ApplicationPoint> = Vec::with_capacity(combo.len());
    for c in combo {
        let n = per_pattern.entry(c.pattern.name()).or_default();
        *n += 1;
        if *n > policy.max_per_pattern {
            return false;
        }
        // graph-level patterns may coexist (they touch different config
        // knobs) but the same point must not host two structural edits
        if c.point != ApplicationPoint::Graph && points.contains(&c.point) {
            return false;
        }
        points.push(c.point);
    }
    true
}

/// Lazy k-subset cursor over the combination space: yields valid
/// combinations (ascending candidate-index vectors) on demand, for
/// `k = 1..=policy.combination_depth(n)`, in the same lexicographic order
/// the eager enumeration used, stopping after `budget` valid combinations.
///
/// Nothing is materialised: memory is O(depth) regardless of how large the
/// space is, which is what lets the streaming planner walk budgets of 100k+
/// without holding the combination list (let alone the flows) in memory.
/// [`stats`](CombinationIter::stats) reports what the cursor has seen so
/// far; it is complete once the iterator returns `None`.
pub struct CombinationIter<'a> {
    candidates: &'a [Candidate],
    policy: &'a DeploymentPolicy,
    budget: usize,
    depth: usize,
    /// Current subset size; 0 = exhausted.
    k: usize,
    /// Next index vector to examine (len == k when active).
    idx: Vec<usize>,
    yielded: usize,
    conflicts: usize,
    truncated: bool,
}

impl<'a> CombinationIter<'a> {
    /// Creates a cursor over `candidates` under `policy`, capped at
    /// `budget` valid combinations.
    pub fn new(candidates: &'a [Candidate], policy: &'a DeploymentPolicy, budget: usize) -> Self {
        let n = candidates.len();
        let depth = policy.combination_depth(n);
        let k = if depth == 0 { 0 } else { 1 };
        CombinationIter {
            candidates,
            policy,
            budget,
            depth,
            k,
            idx: if k == 0 { Vec::new() } else { vec![0] },
            yielded: 0,
            conflicts: 0,
            truncated: false,
        }
    }

    /// Exploration-space statistics for everything the cursor has examined
    /// so far (complete after exhaustion).
    pub fn stats(&self) -> SpaceStats {
        SpaceStats {
            candidates: self.candidates.len(),
            theoretical: theoretical_space(self.candidates.len(), self.depth),
            enumerated: self.yielded,
            conflicts: self.conflicts,
            truncated: self.truncated,
        }
    }

    /// Advances `idx` to the next k-combination in lexicographic order,
    /// rolling over to size k+1; returns false when the space is exhausted.
    fn advance(&mut self) -> bool {
        let n = self.candidates.len();
        let k = self.k;
        let mut pos = k;
        while pos > 0 && self.idx[pos - 1] == pos - 1 + n - k {
            pos -= 1;
        }
        if pos == 0 {
            // all k-combinations exhausted; move to size k+1
            if k >= self.depth {
                self.k = 0;
                return false;
            }
            self.k = k + 1;
            self.idx = (0..self.k).collect();
            return true;
        }
        self.idx[pos - 1] += 1;
        for j in pos..k {
            self.idx[j] = self.idx[j - 1] + 1;
        }
        true
    }
}

impl Iterator for CombinationIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        while self.k != 0 {
            let combo: Vec<&Candidate> = self.idx.iter().map(|&i| &self.candidates[i]).collect();
            let valid = combination_valid(&combo, self.policy);
            if valid && self.yielded >= self.budget {
                // the eager semantics: budget full and one more valid combo
                // exists ⇒ the enumeration was truncated
                self.truncated = true;
                self.k = 0;
                return None;
            }
            let item = if valid {
                self.yielded += 1;
                Some(self.idx.clone())
            } else {
                self.conflicts += 1;
                None
            };
            if !self.advance() && item.is_none() {
                return None;
            }
            if item.is_some() {
                return item;
            }
        }
        None
    }
}

/// Enumerates all valid combinations of size `1..=policy.max_patterns_per_flow`
/// over `candidates`, stopping after `budget` combinations.
///
/// Eager compatibility wrapper over [`CombinationIter`] — prefer the
/// iterator (or the streaming planner) for large budgets. Returns
/// `(combinations, stats)` where each combination is a vector of candidate
/// indices (ascending).
pub fn enumerate_combinations(
    candidates: &[Candidate],
    policy: &DeploymentPolicy,
    budget: usize,
) -> (Vec<Vec<usize>>, SpaceStats) {
    let mut iter = CombinationIter::new(candidates, policy, budget);
    let combos: Vec<Vec<usize>> = iter.by_ref().collect();
    (combos, iter.stats())
}

/// `Σ_{k=1..depth} C(n, k)` — the raw size of the combination space.
pub fn theoretical_space(n: usize, depth: usize) -> f64 {
    let mut total = 0.0;
    for k in 1..=depth.min(n) {
        let mut c = 1.0;
        for i in 0..k {
            c *= (n - i) as f64 / (i + 1) as f64;
        }
        total += c;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uncapped;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;

    fn candidates() -> Vec<Candidate> {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        generate_uncapped(&f, &reg).unwrap()
    }

    #[test]
    fn binomial_space() {
        assert_eq!(theoretical_space(5, 1), 5.0);
        assert_eq!(theoretical_space(5, 2), 15.0);
        assert_eq!(theoretical_space(4, 4), 15.0);
        assert_eq!(theoretical_space(0, 3), 0.0);
    }

    #[test]
    fn depth_one_enumerates_each_candidate_once() {
        let cands = candidates();
        let mut policy = fcp::DeploymentPolicy::exhaustive(1);
        policy.max_patterns_per_flow = 1;
        let (combos, stats) = enumerate_combinations(&cands, &policy, usize::MAX);
        assert_eq!(combos.len(), cands.len());
        assert!(!stats.truncated);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn depth_two_grows_quadratically() {
        let cands = candidates();
        let policy = fcp::DeploymentPolicy::exhaustive(2);
        let (combos, stats) = enumerate_combinations(&cands, &policy, usize::MAX);
        let n = cands.len();
        // upper bound: n + C(n,2); conflicts remove some
        assert!(combos.len() <= n + n * (n - 1) / 2);
        assert!(combos.len() > n, "pairs must exist");
        assert_eq!(stats.enumerated, combos.len());
        assert_eq!(stats.candidates, n);
    }

    #[test]
    fn conflicting_same_point_pairs_rejected() {
        let cands = candidates();
        // find two candidates sharing a point
        let mut shared = None;
        'outer: for (i, a) in cands.iter().enumerate() {
            for (j, b) in cands.iter().enumerate().skip(i + 1) {
                if a.point == b.point && a.point != fcp::ApplicationPoint::Graph {
                    shared = Some((i, j));
                    break 'outer;
                }
            }
        }
        let (i, j) = shared.expect("palette patterns share edge points");
        let policy = fcp::DeploymentPolicy::exhaustive(2);
        assert!(!combination_valid(&[&cands[i], &cands[j]], &policy));
    }

    #[test]
    fn per_pattern_cap_enforced() {
        let cands = candidates();
        let mut policy = fcp::DeploymentPolicy::exhaustive(3);
        policy.max_per_pattern = 1;
        let two_same: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.pattern.name() == "FilterNullValues")
            .take(2)
            .collect();
        assert_eq!(two_same.len(), 2);
        assert!(!combination_valid(&two_same, &policy));
        policy.max_per_pattern = 2;
        assert!(combination_valid(&two_same, &policy));
    }

    #[test]
    fn budget_truncates() {
        let cands = candidates();
        let policy = fcp::DeploymentPolicy::exhaustive(3);
        let (combos, stats) = enumerate_combinations(&cands, &policy, 50);
        assert_eq!(combos.len(), 50);
        assert!(stats.truncated);
    }

    #[test]
    fn empty_candidates_yield_empty_space() {
        let policy = fcp::DeploymentPolicy::balanced();
        let (combos, stats) = enumerate_combinations(&[], &policy, 100);
        assert!(combos.is_empty());
        assert_eq!(stats.theoretical, 0.0);
    }

    #[test]
    fn lazy_iterator_matches_eager_enumeration() {
        let cands = candidates();
        for depth in 1..=3 {
            for budget in [10usize, 500, usize::MAX] {
                let policy = fcp::DeploymentPolicy::exhaustive(depth);
                let (eager, eager_stats) = enumerate_combinations(&cands, &policy, budget);
                let mut iter = CombinationIter::new(&cands, &policy, budget);
                let lazy: Vec<Vec<usize>> = iter.by_ref().collect();
                assert_eq!(eager, lazy, "depth={depth} budget={budget}");
                assert_eq!(eager_stats, iter.stats(), "depth={depth} budget={budget}");
            }
        }
    }

    #[test]
    fn iterator_is_lazy_and_stats_track_progress() {
        let cands = candidates();
        let policy = fcp::DeploymentPolicy::exhaustive(2);
        let mut iter = CombinationIter::new(&cands, &policy, usize::MAX);
        let first: Vec<Vec<usize>> = iter.by_ref().take(7).collect();
        assert_eq!(first.len(), 7);
        let mid = iter.stats();
        assert_eq!(mid.enumerated, 7);
        assert!(!mid.truncated);
        // resuming continues exactly where the cursor stopped
        let rest: Vec<Vec<usize>> = iter.by_ref().collect();
        let (all, _) = enumerate_combinations(&cands, &policy, usize::MAX);
        let resumed: Vec<Vec<usize>> = first.into_iter().chain(rest).collect();
        assert_eq!(all, resumed);
    }

    #[test]
    fn iterator_budget_truncation_matches_eager_flag() {
        let cands = candidates();
        let policy = fcp::DeploymentPolicy::exhaustive(3);
        let mut iter = CombinationIter::new(&cands, &policy, 50);
        let combos: Vec<Vec<usize>> = iter.by_ref().collect();
        assert_eq!(combos.len(), 50);
        assert!(iter.stats().truncated);
        // exact-size budget: everything fits, not truncated
        let (all, full_stats) = enumerate_combinations(&cands, &policy, usize::MAX);
        let mut exact = CombinationIter::new(&cands, &policy, all.len());
        assert_eq!(exact.by_ref().count(), all.len());
        assert!(!exact.stats().truncated);
        assert_eq!(exact.stats().conflicts, full_stats.conflicts);
    }
}
