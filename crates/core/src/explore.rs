//! Combination exploration: the alternative-design space.
//!
//! §2.2: patterns are added "in varying positions and combinations", and
//! "the complexity of this analysis is factorial to the size of the graph".
//! This module enumerates k-subsets of the candidate list under the policy
//! caps, with an overall budget so the space stays tractable.

use crate::generate::Candidate;
use fcp::{ApplicationPoint, DeploymentPolicy};
use std::collections::HashMap;

/// Statistics of the (possibly truncated) exploration space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceStats {
    /// Number of single candidates.
    pub candidates: usize,
    /// Theoretical number of alternatives up to the policy depth (before
    /// conflict filtering and budget truncation).
    pub theoretical: f64,
    /// Combinations actually enumerated.
    pub enumerated: usize,
    /// Combinations discarded due to point/pattern conflicts.
    pub conflicts: usize,
    /// True when the budget cut enumeration short.
    pub truncated: bool,
}

/// A combination is invalid when two applications collide on the same
/// point, or a single pattern exceeds its per-alternative cap.
pub fn combination_valid(combo: &[&Candidate], policy: &DeploymentPolicy) -> bool {
    let mut per_pattern: HashMap<&str, usize> = HashMap::new();
    let mut points: Vec<ApplicationPoint> = Vec::with_capacity(combo.len());
    for c in combo {
        let n = per_pattern.entry(c.pattern.name()).or_default();
        *n += 1;
        if *n > policy.max_per_pattern {
            return false;
        }
        // graph-level patterns may coexist (they touch different config
        // knobs) but the same point must not host two structural edits
        if c.point != ApplicationPoint::Graph && points.contains(&c.point) {
            return false;
        }
        points.push(c.point);
    }
    true
}

/// Enumerates all valid combinations of size `1..=policy.max_patterns_per_flow`
/// over `candidates`, stopping after `budget` combinations.
///
/// Returns `(combinations, stats)` where each combination is a vector of
/// candidate indices (ascending).
pub fn enumerate_combinations(
    candidates: &[Candidate],
    policy: &DeploymentPolicy,
    budget: usize,
) -> (Vec<Vec<usize>>, SpaceStats) {
    let n = candidates.len();
    let depth = policy.max_patterns_per_flow.min(n);
    let mut out = Vec::new();
    let mut conflicts = 0usize;
    let mut truncated = false;

    // iterative k-subset enumeration, k = 1..=depth
    'outer: for k in 1..=depth {
        let mut idx: Vec<usize> = (0..k).collect();
        loop {
            let combo: Vec<&Candidate> = idx.iter().map(|&i| &candidates[i]).collect();
            if combination_valid(&combo, policy) {
                if out.len() >= budget {
                    truncated = true;
                    break 'outer;
                }
                out.push(idx.clone());
            } else {
                conflicts += 1;
            }
            // advance to the next k-combination in lexicographic order
            let mut pos = k;
            while pos > 0 && idx[pos - 1] == pos - 1 + n - k {
                pos -= 1;
            }
            if pos == 0 {
                break; // all k-combinations exhausted
            }
            idx[pos - 1] += 1;
            for j in pos..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    let stats = SpaceStats {
        candidates: n,
        theoretical: theoretical_space(n, depth),
        enumerated: out.len(),
        conflicts,
        truncated,
    };
    (out, stats)
}

/// `Σ_{k=1..depth} C(n, k)` — the raw size of the combination space.
pub fn theoretical_space(n: usize, depth: usize) -> f64 {
    let mut total = 0.0;
    for k in 1..=depth.min(n) {
        let mut c = 1.0;
        for i in 0..k {
            c *= (n - i) as f64 / (i + 1) as f64;
        }
        total += c;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_uncapped;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use fcp::PatternRegistry;

    fn candidates() -> Vec<Candidate> {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        generate_uncapped(&f, &reg).unwrap()
    }

    #[test]
    fn binomial_space() {
        assert_eq!(theoretical_space(5, 1), 5.0);
        assert_eq!(theoretical_space(5, 2), 15.0);
        assert_eq!(theoretical_space(4, 4), 15.0);
        assert_eq!(theoretical_space(0, 3), 0.0);
    }

    #[test]
    fn depth_one_enumerates_each_candidate_once() {
        let cands = candidates();
        let mut policy = fcp::DeploymentPolicy::exhaustive(1);
        policy.max_patterns_per_flow = 1;
        let (combos, stats) = enumerate_combinations(&cands, &policy, usize::MAX);
        assert_eq!(combos.len(), cands.len());
        assert!(!stats.truncated);
        assert_eq!(stats.conflicts, 0);
    }

    #[test]
    fn depth_two_grows_quadratically() {
        let cands = candidates();
        let policy = fcp::DeploymentPolicy::exhaustive(2);
        let (combos, stats) = enumerate_combinations(&cands, &policy, usize::MAX);
        let n = cands.len();
        // upper bound: n + C(n,2); conflicts remove some
        assert!(combos.len() <= n + n * (n - 1) / 2);
        assert!(combos.len() > n, "pairs must exist");
        assert_eq!(stats.enumerated, combos.len());
        assert_eq!(stats.candidates, n);
    }

    #[test]
    fn conflicting_same_point_pairs_rejected() {
        let cands = candidates();
        // find two candidates sharing a point
        let mut shared = None;
        'outer: for (i, a) in cands.iter().enumerate() {
            for (j, b) in cands.iter().enumerate().skip(i + 1) {
                if a.point == b.point && a.point != fcp::ApplicationPoint::Graph {
                    shared = Some((i, j));
                    break 'outer;
                }
            }
        }
        let (i, j) = shared.expect("palette patterns share edge points");
        let policy = fcp::DeploymentPolicy::exhaustive(2);
        assert!(!combination_valid(&[&cands[i], &cands[j]], &policy));
    }

    #[test]
    fn per_pattern_cap_enforced() {
        let cands = candidates();
        let mut policy = fcp::DeploymentPolicy::exhaustive(3);
        policy.max_per_pattern = 1;
        let two_same: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.pattern.name() == "FilterNullValues")
            .take(2)
            .collect();
        assert_eq!(two_same.len(), 2);
        assert!(!combination_valid(&two_same, &policy));
        policy.max_per_pattern = 2;
        assert!(combination_valid(&two_same, &policy));
    }

    #[test]
    fn budget_truncates() {
        let cands = candidates();
        let policy = fcp::DeploymentPolicy::exhaustive(3);
        let (combos, stats) = enumerate_combinations(&cands, &policy, 50);
        assert_eq!(combos.len(), 50);
        assert!(stats.truncated);
    }

    #[test]
    fn empty_candidates_yield_empty_space() {
        let policy = fcp::DeploymentPolicy::balanced();
        let (combos, stats) = enumerate_combinations(&[], &policy, 100);
        assert!(combos.is_empty());
        assert_eq!(stats.theoretical, 0.0);
    }
}
