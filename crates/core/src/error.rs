//! The one error type of the public API.
//!
//! Planner, builder, manager and DTO failures all surface as
//! [`PoiesisError`]; the variants are stable so callers (and a future
//! network service) can match on them instead of scraping messages. The
//! historical [`PlannerError`](crate::PlannerError) name survives as an
//! alias — code matching `PlannerError::InvalidFlow(..)` keeps compiling.

use crate::manager::SessionId;
use analysis::Diagnostic;
use etl_model::{FlowError, SchemaError};
use serde::json::Value;
use serde::ToJson;
use std::fmt;

/// Everything that can go wrong behind the poiesis facade.
#[derive(Debug, Clone, PartialEq)]
pub enum PoiesisError {
    // --- planning-cycle failures (the historical `PlannerError` variants)
    /// The initial flow failed validation.
    InvalidFlow(String),
    /// Static analysis found blocking problems; carries every diagnostic
    /// (errors *and* warnings) so callers can render or serialize them.
    Analysis(Vec<Diagnostic>),
    /// Candidate generation failed.
    Pattern(String),
    /// Baseline evaluation failed.
    Eval(String),

    // --- builder failures
    /// [`SessionBuilder::build`](crate::SessionBuilder::build) was called
    /// without a flow.
    MissingFlow,
    /// The builder was given no catalog.
    MissingCatalog,
    /// The builder's catalog holds no tables, so nothing can be evaluated.
    EmptyCatalog,
    /// The objective is unusable (no goals, a non-positive or non-finite
    /// weight, a duplicate characteristic, a non-positive constraint).
    InvalidObjective(String),

    // --- manager failures
    /// No session is registered under this handle (never created, or
    /// already closed).
    UnknownSession(SessionId),
    /// A selection was requested before any exploration produced a
    /// frontier for the session.
    NothingExplored(SessionId),
    /// The requested skyline rank is outside the frontier.
    RankOutOfRange {
        /// The rank that was asked for.
        rank: usize,
        /// How many designs the frontier holds.
        frontier: usize,
    },

    // --- DTO failures
    /// A wire payload failed to decode.
    Malformed(String),

    // --- persistence failures
    /// A session snapshot could not be captured or restored (unparsable
    /// flow document, duplicate handle, corrupt snapshot file).
    Snapshot(String),
}

impl fmt::Display for PoiesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoiesisError::InvalidFlow(e) => write!(f, "invalid initial flow: {e}"),
            PoiesisError::Analysis(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == analysis::Severity::Error)
                    .count();
                write!(f, "static analysis found {errors} error(s)")?;
                if let Some(first) = diags.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            PoiesisError::Pattern(e) => write!(f, "pattern generation failed: {e}"),
            PoiesisError::Eval(e) => write!(f, "evaluation failed: {e}"),
            PoiesisError::MissingFlow => write!(f, "session builder: no flow was provided"),
            PoiesisError::MissingCatalog => write!(f, "session builder: no catalog was provided"),
            PoiesisError::EmptyCatalog => {
                write!(f, "session builder: the catalog holds no tables")
            }
            PoiesisError::InvalidObjective(e) => write!(f, "invalid objective: {e}"),
            PoiesisError::UnknownSession(id) => write!(f, "unknown session {id}"),
            PoiesisError::NothingExplored(id) => {
                write!(f, "session {id} has no explored frontier to select from")
            }
            PoiesisError::RankOutOfRange { rank, frontier } => write!(
                f,
                "skyline rank {rank} out of range (frontier holds {frontier} designs)"
            ),
            PoiesisError::Malformed(e) => write!(f, "malformed payload: {e}"),
            PoiesisError::Snapshot(e) => write!(f, "session snapshot failed: {e}"),
        }
    }
}

impl PoiesisError {
    /// The stable snake_case code of the variant — what a wire client
    /// should match on (HTTP bodies carry it in `error.code`). Codes are
    /// part of the wire contract (`docs/API.md`) and never change, unlike
    /// the human-readable [`Display`](fmt::Display) messages.
    pub fn code(&self) -> &'static str {
        match self {
            PoiesisError::InvalidFlow(_) => "invalid_flow",
            PoiesisError::Analysis(_) => "analysis",
            PoiesisError::Pattern(_) => "pattern",
            PoiesisError::Eval(_) => "eval",
            PoiesisError::MissingFlow => "missing_flow",
            PoiesisError::MissingCatalog => "missing_catalog",
            PoiesisError::EmptyCatalog => "empty_catalog",
            PoiesisError::InvalidObjective(_) => "invalid_objective",
            PoiesisError::UnknownSession(_) => "unknown_session",
            PoiesisError::NothingExplored(_) => "nothing_explored",
            PoiesisError::RankOutOfRange { .. } => "rank_out_of_range",
            PoiesisError::Malformed(_) => "malformed",
            PoiesisError::Snapshot(_) => "snapshot",
        }
    }
}

impl ToJson for PoiesisError {
    /// The wire form of the error: always `code` + `message`, plus the
    /// variant's structured detail (`session` for handle errors, `rank` /
    /// `frontier` for range errors) so clients never scrape messages.
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("code".to_string(), Value::String(self.code().to_string())),
            ("message".to_string(), Value::String(self.to_string())),
        ];
        match self {
            PoiesisError::UnknownSession(id) | PoiesisError::NothingExplored(id) => {
                fields.push(("session".to_string(), Value::Number(id.raw() as f64)));
            }
            PoiesisError::RankOutOfRange { rank, frontier } => {
                fields.push(("rank".to_string(), Value::Number(*rank as f64)));
                fields.push(("frontier".to_string(), Value::Number(*frontier as f64)));
            }
            PoiesisError::Analysis(diags) => {
                fields.push((
                    "diagnostics".to_string(),
                    Value::Array(diags.iter().map(diagnostic_json).collect()),
                ));
            }
            _ => {}
        }
        Value::object(fields)
    }
}

/// The wire form of one diagnostic: `code`, `severity`, `message`, the
/// location split into `location` kind + optional `node`/`edge` index, and
/// `suggestion` when present.
pub(crate) fn diagnostic_json(d: &Diagnostic) -> Value {
    let mut fields = vec![
        ("code".to_string(), Value::String(d.code.to_string())),
        (
            "severity".to_string(),
            Value::String(d.severity.name().to_string()),
        ),
        ("message".to_string(), Value::String(d.message.clone())),
    ];
    match d.location {
        analysis::Location::Graph => {
            fields.push(("location".to_string(), Value::String("graph".to_string())));
        }
        analysis::Location::Node(n) => {
            fields.push(("location".to_string(), Value::String("node".to_string())));
            fields.push(("node".to_string(), Value::Number(n.index() as f64)));
        }
        analysis::Location::Edge(e) => {
            fields.push(("location".to_string(), Value::String("edge".to_string())));
            fields.push(("edge".to_string(), Value::Number(e.index() as f64)));
        }
    }
    if let Some(s) = &d.suggestion {
        fields.push(("suggestion".to_string(), Value::String(s.clone())));
    }
    if !d.notes.is_empty() {
        fields.push((
            "notes".to_string(),
            Value::Array(d.notes.iter().map(|n| Value::String(n.clone())).collect()),
        ));
    }
    Value::object(fields)
}

impl From<FlowError> for PoiesisError {
    /// Structural flow errors become `analysis` diagnostics with stable
    /// `PA0xx` codes instead of stringly planner-internal messages.
    fn from(e: FlowError) -> Self {
        PoiesisError::Analysis(vec![analysis::flow_error_diagnostic(&e)])
    }
}

impl From<SchemaError> for PoiesisError {
    /// Schema propagation errors become `analysis` diagnostics with stable
    /// `PA0xx` codes instead of stringly planner-internal messages.
    fn from(e: SchemaError) -> Self {
        PoiesisError::Analysis(vec![analysis::flow_error_diagnostic(&FlowError::Schema(e))])
    }
}

impl std::error::Error for PoiesisError {}

impl From<serde::json::JsonError> for PoiesisError {
    fn from(e: serde::json::JsonError) -> Self {
        PoiesisError::Malformed(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(
            PoiesisError::InvalidFlow("x".into()).to_string(),
            "invalid initial flow: x"
        );
        assert_eq!(
            PoiesisError::RankOutOfRange {
                rank: 9,
                frontier: 3
            }
            .to_string(),
            "skyline rank 9 out of range (frontier holds 3 designs)"
        );
        assert!(PoiesisError::MissingFlow.to_string().contains("no flow"));
    }

    #[test]
    fn json_errors_convert_to_malformed() {
        let e: PoiesisError = serde::json::JsonError("bad".into()).into();
        assert_eq!(e, PoiesisError::Malformed("bad".into()));
    }

    #[test]
    fn every_variant_has_a_stable_code_and_json_form() {
        let id = SessionId::from_raw(7);
        let cases: Vec<(PoiesisError, &str)> = vec![
            (PoiesisError::InvalidFlow("x".into()), "invalid_flow"),
            (
                PoiesisError::Analysis(vec![analysis::Diagnostic::error(
                    analysis::codes::CYCLE,
                    analysis::Location::Graph,
                    "flow graph contains a directed cycle",
                )]),
                "analysis",
            ),
            (PoiesisError::Pattern("x".into()), "pattern"),
            (PoiesisError::Eval("x".into()), "eval"),
            (PoiesisError::MissingFlow, "missing_flow"),
            (PoiesisError::MissingCatalog, "missing_catalog"),
            (PoiesisError::EmptyCatalog, "empty_catalog"),
            (
                PoiesisError::InvalidObjective("x".into()),
                "invalid_objective",
            ),
            (PoiesisError::UnknownSession(id), "unknown_session"),
            (PoiesisError::NothingExplored(id), "nothing_explored"),
            (
                PoiesisError::RankOutOfRange {
                    rank: 9,
                    frontier: 3,
                },
                "rank_out_of_range",
            ),
            (PoiesisError::Malformed("x".into()), "malformed"),
            (PoiesisError::Snapshot("x".into()), "snapshot"),
        ];
        for (err, code) in cases {
            assert_eq!(err.code(), code);
            let v = err.to_json();
            assert_eq!(v.get("code").unwrap().as_str("code").unwrap(), code);
            assert_eq!(
                v.get("message").unwrap().as_str("message").unwrap(),
                err.to_string()
            );
        }
    }

    #[test]
    fn structured_detail_rides_along_in_json() {
        let v = PoiesisError::UnknownSession(SessionId::from_raw(3)).to_json();
        assert_eq!(v.get("session").unwrap().as_usize("session").unwrap(), 3);
        let v = PoiesisError::RankOutOfRange {
            rank: 9,
            frontier: 3,
        }
        .to_json();
        assert_eq!(v.get("rank").unwrap().as_usize("rank").unwrap(), 9);
        assert_eq!(v.get("frontier").unwrap().as_usize("frontier").unwrap(), 3);
    }

    #[test]
    fn analysis_errors_carry_diagnostics_in_json() {
        let diag = analysis::Diagnostic::error(
            analysis::codes::UNRESOLVED_COLUMN,
            analysis::Location::Node(etl_model::NodeId::from_raw(3)),
            "`F` references column `ghost` absent from its input schema",
        )
        .with_suggestion("produce `ghost` upstream or correct the reference");
        let err = PoiesisError::Analysis(vec![diag]);
        assert_eq!(err.code(), "analysis");
        assert!(err.to_string().contains("1 error(s)"));
        assert!(err.to_string().contains("PA010"));

        let v = err.to_json();
        let diags = v
            .get("diagnostics")
            .unwrap()
            .as_array("diagnostics")
            .unwrap();
        assert_eq!(diags.len(), 1);
        let d = &diags[0];
        assert_eq!(d.get("code").unwrap().as_str("code").unwrap(), "PA010");
        assert_eq!(
            d.get("severity").unwrap().as_str("severity").unwrap(),
            "error"
        );
        assert_eq!(
            d.get("location").unwrap().as_str("location").unwrap(),
            "node"
        );
        assert_eq!(d.get("node").unwrap().as_usize("node").unwrap(), 3);
        assert!(d.get("suggestion").is_ok());
    }

    #[test]
    fn flow_and_schema_errors_convert_to_analysis_diagnostics() {
        let e: PoiesisError = etl_model::FlowError::Cyclic.into();
        match &e {
            PoiesisError::Analysis(diags) => {
                assert_eq!(diags.len(), 1);
                assert_eq!(diags[0].code, analysis::codes::CYCLE);
            }
            other => panic!("expected Analysis, got {other:?}"),
        }
        assert_eq!(e.code(), "analysis");

        let e: PoiesisError = etl_model::SchemaError::Bind {
            op: "F".into(),
            column: "ghost".into(),
        }
        .into();
        match &e {
            PoiesisError::Analysis(diags) => {
                assert_eq!(diags[0].code, analysis::codes::UNRESOLVED_COLUMN);
                assert!(diags[0].message.contains("ghost"));
            }
            other => panic!("expected Analysis, got {other:?}"),
        }
    }
}
