//! The one error type of the public API.
//!
//! Planner, builder, manager and DTO failures all surface as
//! [`PoiesisError`]; the variants are stable so callers (and a future
//! network service) can match on them instead of scraping messages. The
//! historical [`PlannerError`](crate::PlannerError) name survives as an
//! alias — code matching `PlannerError::InvalidFlow(..)` keeps compiling.

use crate::manager::SessionId;
use std::fmt;

/// Everything that can go wrong behind the poiesis facade.
#[derive(Debug, Clone, PartialEq)]
pub enum PoiesisError {
    // --- planning-cycle failures (the historical `PlannerError` variants)
    /// The initial flow failed validation.
    InvalidFlow(String),
    /// Candidate generation failed.
    Pattern(String),
    /// Baseline evaluation failed.
    Eval(String),

    // --- builder failures
    /// [`SessionBuilder::build`](crate::SessionBuilder::build) was called
    /// without a flow.
    MissingFlow,
    /// The builder was given no catalog.
    MissingCatalog,
    /// The builder's catalog holds no tables, so nothing can be evaluated.
    EmptyCatalog,
    /// The objective is unusable (no goals, a non-positive or non-finite
    /// weight, a duplicate characteristic, a non-positive constraint).
    InvalidObjective(String),

    // --- manager failures
    /// No session is registered under this handle (never created, or
    /// already closed).
    UnknownSession(SessionId),
    /// A selection was requested before any exploration produced a
    /// frontier for the session.
    NothingExplored(SessionId),
    /// The requested skyline rank is outside the frontier.
    RankOutOfRange {
        /// The rank that was asked for.
        rank: usize,
        /// How many designs the frontier holds.
        frontier: usize,
    },

    // --- DTO failures
    /// A wire payload failed to decode.
    Malformed(String),
}

impl fmt::Display for PoiesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoiesisError::InvalidFlow(e) => write!(f, "invalid initial flow: {e}"),
            PoiesisError::Pattern(e) => write!(f, "pattern generation failed: {e}"),
            PoiesisError::Eval(e) => write!(f, "evaluation failed: {e}"),
            PoiesisError::MissingFlow => write!(f, "session builder: no flow was provided"),
            PoiesisError::MissingCatalog => write!(f, "session builder: no catalog was provided"),
            PoiesisError::EmptyCatalog => {
                write!(f, "session builder: the catalog holds no tables")
            }
            PoiesisError::InvalidObjective(e) => write!(f, "invalid objective: {e}"),
            PoiesisError::UnknownSession(id) => write!(f, "unknown session {id}"),
            PoiesisError::NothingExplored(id) => {
                write!(f, "session {id} has no explored frontier to select from")
            }
            PoiesisError::RankOutOfRange { rank, frontier } => write!(
                f,
                "skyline rank {rank} out of range (frontier holds {frontier} designs)"
            ),
            PoiesisError::Malformed(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for PoiesisError {}

impl From<serde::json::JsonError> for PoiesisError {
    fn from(e: serde::json::JsonError) -> Self {
        PoiesisError::Malformed(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_stable() {
        assert_eq!(
            PoiesisError::InvalidFlow("x".into()).to_string(),
            "invalid initial flow: x"
        );
        assert_eq!(
            PoiesisError::RankOutOfRange {
                rank: 9,
                frontier: 3
            }
            .to_string(),
            "skyline rank 9 out of range (frontier holds 3 designs)"
        );
        assert!(PoiesisError::MissingFlow.to_string().contains("no flow"));
    }

    #[test]
    fn json_errors_convert_to_malformed() {
        let e: PoiesisError = serde::json::JsonError("bad".into()).into();
        assert_eq!(e, PoiesisError::Malformed("bad".into()));
    }
}
