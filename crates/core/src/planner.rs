//! The Planner: one full generation → application → estimation → skyline
//! cycle (Fig. 3), run as a *streaming* pipeline.
//!
//! The paper notes the analysis "is factorial to the size of the graph" and
//! that only the Pareto frontier is ever shown to the user. The engine
//! therefore never materialises the combination list or the flow pool: a
//! [`SearchStrategy`] walks the space lazily and submits combination
//! batches; workers pull combination indices from a shared cursor, apply
//! and evaluate *per worker*, and feed scores into a shared incremental
//! [`SkylineSet`]. With [`PlannerConfig::retain_dominated`] off, dominated
//! designs are dropped the moment the frontier rejects them, so memory is
//! O(frontier) instead of O(space) and the budget can grow by orders of
//! magnitude. [`Planner::plan_materialized`] keeps the original
//! materialize-all path for A/B comparison (see the `streaming_sweep` bin).

use crate::apply::{apply_combination, apply_combination_incremental, CarriedTable, LabelTable};
use crate::eval::{characteristic_scores, evaluate_flow, Alternative, EvalMode};
use crate::explore::{enumerate_combinations, theoretical_space, SpaceStats};
use crate::generate::{generate_candidates, Candidate};
use crate::objective::Objective;
use crate::search::{CombinationSink, SearchSpace, SearchStrategy, SearchStrategyKind};
use crate::skyline::{pareto_skyline, Insertion, SkylineSet};
use datagen::Catalog;
use etl_model::EtlFlow;
use fcp::{AppliedPattern, DeploymentPolicy, PatternContext, PatternRegistry};
use quality::{Characteristic, MeasureVector, QualityReport, SourceStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use crate::error::PoiesisError as PlannerError;

/// Planner configuration (the "user-defined configurations" input of
/// Fig. 3).
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Deployment policy (pattern selection, combination depth, caps).
    pub policy: DeploymentPolicy,
    /// Estimation mode.
    pub eval_mode: EvalMode,
    /// Worker threads for concurrent evaluation.
    pub workers: usize,
    /// Hard cap on enumerated alternatives per cycle. Memory grows with
    /// what is *retained*, not with the budget: with
    /// [`retain_dominated`](Self::retain_dominated) off the engine holds
    /// O(batch + frontier) flows and this can grow far past the old
    /// materialize-all ceiling of 5 000; with retention on (the default)
    /// every admitted alternative is kept, so raise the budget and drop
    /// dominated designs together.
    pub max_alternatives: usize,
    /// How the combination space is walked.
    pub strategy: SearchStrategyKind,
    /// Keep dominated alternatives in [`PlannerOutcome::alternatives`]
    /// (the historical behaviour, needed for full scatter-plots). When
    /// `false`, dominated designs are dropped as soon as the incremental
    /// skyline rejects them and the outcome holds only the frontier —
    /// memory O(frontier) instead of O(space).
    pub retain_dominated: bool,
    /// The user's quality objective: the scatter-plot axes (Fig. 4 uses
    /// performance × data quality × reliability), their ranking weights and
    /// directions, and hard measure constraints. Replaces the old bare
    /// `dimensions` list and the implicit score-sum ranking.
    pub objective: Objective,
    /// RNG seed forwarded to simulation-mode evaluation.
    pub seed: u64,
    /// Statically pre-screen every combination before evaluation: pattern
    /// preconditions are checked against the base flow before the clone,
    /// and the applied result is validated before the (much more expensive)
    /// evaluation. Skipped combinations are counted in
    /// [`PlannerOutcome::statically_rejected`] instead of surfacing as
    /// apply- or evaluation-time failures. On by default; turning it off
    /// restores the historical fail-at-evaluation behaviour.
    pub prescreen: bool,
    /// Incremental (delta) evaluation of [`EvalMode::Estimate`] cycles.
    /// The base flow's estimator state ([`quality::EstimateBaseline`]) and
    /// `Arc`-shared schema table are computed once per cycle; each
    /// combination then recomputes only the nodes its patch touched plus
    /// their downstream closure — O(patch) instead of O(flow) per
    /// combination — for both the structural/schema screen
    /// ([`analysis::screen_delta`]) and the measure estimate
    /// ([`quality::estimate_delta`]). The resulting measure vectors are
    /// bit-identical to from-scratch evaluation (enforced by tests), so
    /// this is on by default; turning it off restores full per-combination
    /// re-evaluation for A/B timing. Ignored in [`EvalMode::Simulate`].
    pub delta_eval: bool,
    /// Bound-based dominance pre-pruning: before a combination is even
    /// forked, its sound optimistic score bound
    /// ([`analysis::combination_gain`] over the patterns'
    /// [`fcp::Pattern::gain_profile`]s) is offered to the current frontier;
    /// if some member already dominates the *best the combination could
    /// possibly score*, it is skipped unevaluated and counted in
    /// [`PlannerOutcome::bound_pruned`]. Pruned combinations provably
    /// cannot enter the skyline, so the frontier is bit-identical with the
    /// flag on or off (proptest-enforced). Activates only when it cannot
    /// change any observable output: [`retain_dominated`](Self::retain_dominated)
    /// off (a pruned flow would otherwise be retained), a non-steering
    /// strategy ([`SearchStrategy::uses_steering`] false — skipping scores
    /// would change beam/greedy walks), and [`EvalMode::Estimate`] (the
    /// bounds are proven against the estimator). On by default.
    pub bound_prune: bool,
}

impl PlannerConfig {
    /// The scatter-plot axes, in order (shorthand for
    /// `self.objective.characteristics()`).
    pub fn dimensions(&self) -> Vec<Characteristic> {
        self.objective.characteristics()
    }
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            policy: DeploymentPolicy::balanced(),
            eval_mode: EvalMode::Estimate,
            workers: 4,
            max_alternatives: 50_000,
            strategy: SearchStrategyKind::Exhaustive,
            retain_dominated: true,
            objective: Objective::balanced(),
            seed: 0xBEEF,
            prescreen: true,
            delta_eval: true,
            bound_prune: true,
        }
    }
}

/// The result of one planning cycle.
pub struct PlannerOutcome {
    /// Baseline (initial flow) measures.
    pub baseline: MeasureVector,
    /// The candidates that were considered.
    pub candidates: Vec<Candidate>,
    /// The evaluated, policy-admitted alternatives that were retained:
    /// everything evaluated when [`PlannerConfig::retain_dominated`] is on,
    /// only the frontier when it is off.
    pub alternatives: Vec<Alternative>,
    /// Indices (into `alternatives`) of the Pareto frontier, ascending —
    /// the only designs presented to the user (Fig. 4).
    pub skyline: Vec<usize>,
    /// Exploration-space statistics.
    pub stats: SpaceStats,
    /// Alternatives rejected by policy measure constraints.
    pub rejected_by_constraints: usize,
    /// Combinations that failed during application (conflicts discovered
    /// at apply time).
    pub failed_applications: usize,
    /// Alternatives whose evaluation errored; they are skipped rather than
    /// aborting the cycle, so one bad simulation no longer discards
    /// thousands of good designs.
    pub failed_evaluations: usize,
    /// Combinations pruned by the static pre-screen
    /// ([`PlannerConfig::prescreen`]) before any evaluation: a pattern
    /// precondition did not hold on the base flow, or the applied result
    /// failed flow validation.
    pub statically_rejected: usize,
    /// Combinations skipped by the bound-based dominance pre-pruner
    /// ([`PlannerConfig::bound_prune`]): their optimistic score bound was
    /// already dominated by the frontier, so they were never forked,
    /// applied or evaluated.
    pub bound_pruned: usize,
    /// `skyline` re-ordered best-objective-first, computed once at
    /// assembly so [`skyline_alternatives`](Self::skyline_alternatives)
    /// neither sorts nor allocates per call.
    ranked: Vec<usize>,
}

impl PlannerOutcome {
    /// Assembles an outcome, computing the best-objective-first skyline
    /// order (the [`Objective::scalarize`] ranking) once.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        objective: &Objective,
        baseline: MeasureVector,
        candidates: Vec<Candidate>,
        alternatives: Vec<Alternative>,
        skyline: Vec<usize>,
        stats: SpaceStats,
        rejected_by_constraints: usize,
        failed_applications: usize,
        failed_evaluations: usize,
        statically_rejected: usize,
        bound_pruned: usize,
    ) -> Self {
        let mut ranked = skyline.clone();
        ranked.sort_by(|&a, &b| {
            let sa = objective.scalarize(&alternatives[a].scores);
            let sb = objective.scalarize(&alternatives[b].scores);
            sb.total_cmp(&sa)
        });
        PlannerOutcome {
            baseline,
            candidates,
            alternatives,
            skyline,
            stats,
            rejected_by_constraints,
            failed_applications,
            failed_evaluations,
            statically_rejected,
            bound_pruned,
            ranked,
        }
    }

    /// Iterator over the skyline alternatives, best-objective-first.
    pub fn skyline_alternatives(&self) -> impl Iterator<Item = &Alternative> {
        self.ranked.iter().map(move |&i| &self.alternatives[i])
    }

    /// The frontier design at `rank` (0 = best objective) — a direct O(1)
    /// lookup into the cached ranking, replacing `.nth(rank)` walks.
    pub fn skyline_alternative(&self, rank: usize) -> Option<&Alternative> {
        self.ranked.get(rank).map(|&i| &self.alternatives[i])
    }

    /// The skyline indices ranked best-objective-first (the order
    /// [`skyline_alternatives`](Self::skyline_alternatives) walks).
    pub fn skyline_ranked(&self) -> &[usize] {
        &self.ranked
    }

    /// The skyline alternative names as a sorted set — the identity of the
    /// frontier, independent of index layout or retention mode.
    pub fn skyline_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .skyline
            .iter()
            .map(|&i| self.alternatives[i].name.as_str())
            .collect();
        names.sort_unstable();
        names
    }

    /// The Fig. 5 report for one alternative: relative change of every
    /// measure against the initial flow, grouped by characteristic with
    /// drill-down.
    pub fn report(&self, alt: &Alternative) -> QualityReport {
        QualityReport::build(alt.name.clone(), &self.baseline, &alt.measures)
    }
}

/// The POIESIS Planner.
pub struct Planner {
    flow: EtlFlow,
    catalog: Catalog,
    registry: PatternRegistry,
    config: PlannerConfig,
    stats_cache: HashMap<String, SourceStats>,
}

impl Planner {
    /// Creates a planner for an initial flow over a source catalog.
    ///
    /// This is the legacy entry point, kept working for existing callers;
    /// it routes through the [`SessionBuilder`](crate::SessionBuilder)
    /// internally (without the builder's up-front validation — errors
    /// surface at [`plan`](Self::plan) time, as they always did). New code
    /// should start from [`Poiesis::session`](crate::Poiesis::session).
    pub fn new(
        flow: EtlFlow,
        catalog: Catalog,
        registry: PatternRegistry,
        config: PlannerConfig,
    ) -> Self {
        crate::builder::SessionBuilder::from_config(config)
            .flow(flow)
            .catalog(catalog)
            .registry(registry)
            .assemble_planner()
    }

    /// The unchecked constructor both [`new`](Self::new) and the builder
    /// bottom out in.
    pub(crate) fn from_parts(
        flow: EtlFlow,
        catalog: Catalog,
        registry: PatternRegistry,
        config: PlannerConfig,
    ) -> Self {
        let stats_cache = quality::estimator::source_stats(&catalog);
        Planner {
            flow,
            catalog,
            registry,
            config,
            stats_cache,
        }
    }

    /// The current base flow.
    pub fn flow(&self) -> &EtlFlow {
        &self.flow
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The pattern registry (palette).
    pub fn registry(&self) -> &PatternRegistry {
        &self.registry
    }

    /// The configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Replaces the base flow (used by the iterative session when the user
    /// selects a design).
    pub fn set_flow(&mut self, flow: EtlFlow) {
        self.flow = flow;
    }

    /// Runs one full planning cycle with the configured search strategy.
    pub fn plan(&self) -> Result<PlannerOutcome, PlannerError> {
        self.plan_with(self.config.strategy.instantiate().as_ref())
    }

    /// Runs one full planning cycle with an explicit (possibly
    /// user-defined) search strategy — the streaming engine.
    pub fn plan_with(&self, strategy: &dyn SearchStrategy) -> Result<PlannerOutcome, PlannerError> {
        let (baseline, candidates, schemas) = self.prepare()?;
        let precheck = self.precheck_context()?;
        let delta = self.delta_context(&schemas);
        let labels = LabelTable::new(&candidates);
        // The pruner activates only where a skipped combination is provably
        // unobservable — see [`PlannerConfig::bound_prune`].
        let bound_prune = self.config.bound_prune
            && !self.config.retain_dominated
            && !strategy.uses_steering()
            && self.config.eval_mode == EvalMode::Estimate;
        let engine = StreamingEngine::new(
            self,
            &baseline,
            &candidates,
            precheck,
            delta,
            labels,
            bound_prune,
        );
        let space = SearchSpace {
            candidates: &candidates,
            policy: &self.config.policy,
            budget: self.config.max_alternatives,
        };
        let mut sink = EngineSink {
            engine: &engine,
            next_seq: 0,
        };
        let report = strategy.run(&space, &mut sink);
        let harvest = engine.finish();
        let stats = SpaceStats {
            candidates: candidates.len(),
            theoretical: theoretical_space(
                candidates.len(),
                self.config.policy.combination_depth(candidates.len()),
            ),
            enumerated: report.enumerated,
            conflicts: report.conflicts,
            truncated: report.truncated,
        };
        Ok(PlannerOutcome::assemble(
            &self.config.objective,
            baseline,
            candidates,
            harvest.alternatives,
            harvest.skyline,
            stats,
            harvest.rejected_by_constraints,
            harvest.failed_applications,
            harvest.failed_evaluations,
            harvest.statically_rejected,
            harvest.bound_pruned,
        ))
    }

    /// The original materialize-all pipeline: enumerate every combination,
    /// clone every flow, evaluate the whole pool, skyline once at the end.
    /// Kept as the A/B reference for the streaming engine (equal skylines,
    /// O(space) memory) — see `streaming_sweep` and the equivalence tests.
    pub fn plan_materialized(&self) -> Result<PlannerOutcome, PlannerError> {
        let (baseline, candidates, schemas) = self.prepare()?;
        let (combos, stats) = enumerate_combinations(
            &candidates,
            &self.config.policy,
            self.config.max_alternatives,
        );
        let precheck = self.precheck_context()?;
        let delta = self.delta_context(&schemas);
        let labels = LabelTable::new(&candidates);
        let mut flows = Vec::with_capacity(combos.len());
        let mut cows = Vec::with_capacity(combos.len());
        let mut metas = Vec::with_capacity(combos.len());
        let mut failed_applications = 0usize;
        let mut statically_rejected = 0usize;
        for combo in &combos {
            match self.realize_combination(
                combo,
                &candidates,
                &labels,
                precheck.as_ref(),
                delta.as_ref(),
            ) {
                Realization::Ready {
                    flow,
                    applied,
                    name,
                    cow,
                } => {
                    let descs = applied
                        .iter()
                        .map(|a| format!("{} {}", a.pattern, a.point))
                        .collect::<Vec<_>>();
                    flows.push(flow);
                    cows.push(cow);
                    metas.push((name, descs, combo.clone()));
                }
                Realization::Screened => statically_rejected += 1,
                Realization::ApplyFailed => failed_applications += 1,
            }
        }

        let measures = crate::eval::par_map_indexed(flows.len(), self.config.workers, |i| {
            self.evaluate_combination(&flows[i], delta.as_ref(), cows[i].as_ref())
        });

        let objective = &self.config.objective;
        let dimensions = objective.characteristics();
        let mut alternatives = Vec::with_capacity(flows.len());
        let mut rejected = 0usize;
        let mut failed_evaluations = 0usize;
        for ((flow, (name, applied, combo)), m) in flows.into_iter().zip(metas).zip(measures) {
            let m = match m {
                Ok(m) => m,
                Err(_) => {
                    failed_evaluations += 1;
                    continue;
                }
            };
            if !self.config.policy.admits(&baseline, &m) || !objective.admits(&baseline, &m) {
                rejected += 1;
                continue;
            }
            let scores = characteristic_scores(&m, &baseline, &dimensions);
            alternatives.push(Alternative {
                name,
                flow,
                applied,
                combo,
                measures: m,
                scores,
            });
        }

        let points: Vec<Vec<f64>> = alternatives
            .iter()
            .map(|a| objective.oriented(&a.scores))
            .collect();
        let skyline = pareto_skyline(&points);

        Ok(PlannerOutcome::assemble(
            objective,
            baseline,
            candidates,
            alternatives,
            skyline,
            stats,
            rejected,
            failed_applications,
            failed_evaluations,
            statically_rejected,
            // the materialize-all reference path never prunes
            0,
        ))
    }

    /// The pattern context both pipelines pre-screen candidate
    /// preconditions against, or `None` when
    /// [`PlannerConfig::prescreen`] is off. Built once per cycle over the
    /// base flow — combinations only ever fork the base, so one context
    /// serves every check.
    fn precheck_context(&self) -> Result<Option<PatternContext<'_>>, PlannerError> {
        if !self.config.prescreen {
            return Ok(None);
        }
        PatternContext::new(&self.flow)
            .map(Some)
            .map_err(|e| PlannerError::Pattern(e.to_string()))
    }

    /// The per-cycle incremental-evaluation context, or `None` when delta
    /// evaluation does not apply (disabled, or the cycle simulates). Both
    /// parts are O(flow) once: the estimator baseline caches every node's
    /// measure contributions, the schema table `Arc`-shares every node's
    /// output schema; per-combination work then touches only the patch and
    /// its downstream closure.
    fn delta_context(&self, schemas: &etl_model::SchemaTable) -> Option<DeltaCtx> {
        if !self.config.delta_eval || self.config.eval_mode != EvalMode::Estimate {
            return None;
        }
        // `prepare` already propagated the table once for the whole cycle;
        // the `Arc`-shared slots make this clone O(nodes) pointer bumps.
        Some(DeltaCtx {
            baseline: quality::estimate_baseline(&self.flow, &self.stats_cache),
            schemas: schemas.clone(),
        })
    }

    /// The shared prescreen → apply → post-screen pipeline of both planner
    /// paths: checks every candidate's preconditions against the base flow,
    /// forks and applies the combination, and screens the applied result —
    /// incrementally when a [`DeltaCtx`] is available.
    fn realize_combination(
        &self,
        combo: &[usize],
        candidates: &[Candidate],
        labels: &LabelTable,
        precheck: Option<&PatternContext<'_>>,
        delta: Option<&DeltaCtx>,
    ) -> Realization {
        let refs: Vec<&Candidate> = combo.iter().map(|&i| &candidates[i]).collect();
        if let Some(ctx) = precheck {
            // precondition screen: every candidate must hold on the base
            // flow *before* we pay for the fork
            if refs
                .iter()
                .any(|c| !analysis::check_application(ctx, c.pattern.as_ref(), c.point).is_empty())
            {
                return Realization::Screened;
            }
        }
        let name = labels.name(&self.flow, combo);
        // With a delta context, apply incrementally: the base schema table
        // is carried across the combination's applications (O(patch) per
        // step) instead of re-propagated from scratch inside each pattern.
        let (flow, applied, carried) = match delta {
            Some(d) => {
                match apply_combination_incremental(&self.flow, &refs, name.clone(), &d.schemas) {
                    Ok((f, a, c)) => (f, a, Some(c)),
                    Err(_) => return Realization::ApplyFailed,
                }
            }
            None => match apply_combination(&self.flow, &refs, name.clone()) {
                Ok((f, a)) => (f, a, None),
                Err(_) => return Realization::ApplyFailed,
            },
        };
        // structural screen: an applied flow that no longer validates would
        // only fail later (and more expensively) inside evaluation. With a
        // delta context the incremental apply has already settled the
        // schema verdict and computed the fork's copy-on-write delta, so
        // only the patched region's structure is checked here.
        let cow = match carried {
            Some(CarriedTable::Broken(_)) => {
                if precheck.is_some() {
                    return Realization::Screened;
                }
                Some(flow.delta_since(&self.flow))
            }
            Some(CarriedTable::Exact { cow, .. }) => {
                if precheck.is_some() && analysis::screen_delta_structural(&flow, &cow).is_some() {
                    return Realization::Screened;
                }
                Some(cow)
            }
            None => {
                if precheck.is_some() && analysis::screen(&flow).is_some() {
                    return Realization::Screened;
                }
                None
            }
        };
        Realization::Ready {
            flow,
            applied,
            name,
            cow,
        }
    }

    /// Scores one realized combination: delta estimation against the
    /// cached baseline when available, full evaluation otherwise. Both
    /// produce bit-identical measure vectors.
    fn evaluate_combination(
        &self,
        flow: &EtlFlow,
        delta: Option<&DeltaCtx>,
        cow: Option<&etl_model::CowDelta>,
    ) -> Result<MeasureVector, simulator::SimError> {
        match (delta, cow) {
            (Some(d), Some(cd)) => Ok(quality::estimate_delta_with(
                flow,
                &self.flow,
                &d.baseline,
                &self.stats_cache,
                cd,
            )),
            (Some(d), None) => Ok(quality::estimate_delta(
                flow,
                &self.flow,
                &d.baseline,
                &self.stats_cache,
            )),
            _ => evaluate_flow(
                flow,
                &self.catalog,
                &self.stats_cache,
                self.config.eval_mode,
                self.config.seed,
            ),
        }
    }

    /// Shared preamble of both pipelines: validate the flow, score the
    /// baseline, generate candidates. Returns the propagated schema table
    /// so the cycle never re-derives it — validation, the incremental
    /// [`DeltaCtx`] and any later analysis share the one propagation.
    fn prepare(
        &self,
    ) -> Result<(MeasureVector, Vec<Candidate>, etl_model::SchemaTable), PlannerError> {
        self.flow
            .validate_structure()
            .map_err(|e| PlannerError::InvalidFlow(e.to_string()))?;
        let schemas = etl_model::propagate_schemas(&self.flow)
            .map_err(|e| PlannerError::InvalidFlow(etl_model::FlowError::Schema(e).to_string()))?;
        let baseline = evaluate_flow(
            &self.flow,
            &self.catalog,
            &self.stats_cache,
            self.config.eval_mode,
            self.config.seed,
        )
        .map_err(|e| PlannerError::Eval(e.to_string()))?;
        let candidates = generate_candidates(&self.flow, &self.registry, &self.config.policy)
            .map_err(|e| PlannerError::Pattern(e.to_string()))?;
        Ok((baseline, candidates, schemas))
    }
}

/// Per-cycle incremental-evaluation state (the copy-on-write/delta
/// tentpole): the base flow's cached estimator contributions and its
/// `Arc`-shared schema table. Combinations fork the base flow, so their
/// [`CowDelta`](etl_model::CowDelta) recovers exactly the patched slots and
/// everything outside the patch's downstream closure is reused verbatim.
struct DeltaCtx {
    baseline: quality::EstimateBaseline,
    schemas: etl_model::SchemaTable,
}

/// Outcome of [`Planner::realize_combination`]: an applied flow ready for
/// evaluation, or a counted rejection (the caller owns the counters — the
/// streaming engine uses atomics, the materialized path plain integers).
enum Realization {
    /// Applied and screened; evaluate it.
    Ready {
        flow: EtlFlow,
        applied: Vec<AppliedPattern>,
        name: String,
        /// The fork's copy-on-write delta (present iff a [`DeltaCtx`] was
        /// active), reused by the measure estimate.
        cow: Option<etl_model::CowDelta>,
    },
    /// Dropped by the static pre- or post-screen.
    Screened,
    /// The application itself failed (conflicting candidates).
    ApplyFailed,
}

// --------------------------------------------------------- streaming engine

/// Shared mutable state of one streaming cycle: the live frontier and the
/// retained alternatives, keyed by the combination's global sequence
/// number (its position in the strategy's submission order, which for
/// [`Exhaustive`](crate::search::Exhaustive) equals the lazy enumeration
/// order — so final indices match the materialized path exactly).
struct EngineState {
    skyline: SkylineSet,
    retained: Vec<(usize, Alternative)>,
}

/// Everything the engine accumulated over a cycle.
struct Harvest {
    alternatives: Vec<Alternative>,
    skyline: Vec<usize>,
    rejected_by_constraints: usize,
    failed_applications: usize,
    failed_evaluations: usize,
    statically_rejected: usize,
    bound_pruned: usize,
}

/// The streaming generate→apply→evaluate→skyline engine. Each submitted
/// batch is processed by a scoped worker pool: workers pull combination
/// indices from a shared atomic cursor, apply + evaluate locally (no
/// up-front flow pool), and push `(seq, scores)` into the shared
/// [`SkylineSet`] under one short-lived lock. Evaluation — the expensive
/// part — runs outside any lock.
struct StreamingEngine<'a> {
    planner: &'a Planner,
    baseline: &'a MeasureVector,
    candidates: &'a [Candidate],
    /// Goal axes, resolved from the objective once per cycle.
    dimensions: Vec<Characteristic>,
    retain_dominated: bool,
    /// Base-flow pattern context the static pre-screen checks candidate
    /// preconditions against; `None` when pre-screening is disabled.
    precheck: Option<PatternContext<'a>>,
    /// Incremental-evaluation context ([`PlannerConfig::delta_eval`]);
    /// `None` when delta evaluation does not apply to this cycle.
    delta: Option<DeltaCtx>,
    /// Candidate labels, derived and ranked once per cycle.
    labels: LabelTable,
    /// Per-candidate static gain profiles, present iff the bound-based
    /// dominance pre-pruner is active for this cycle (see
    /// [`PlannerConfig::bound_prune`] for the activation conditions).
    gain_profiles: Option<Vec<quality::GainProfile>>,
    state: Mutex<EngineState>,
    rejected: AtomicUsize,
    failed_applications: AtomicUsize,
    failed_evaluations: AtomicUsize,
    statically_rejected: AtomicUsize,
    bound_pruned: AtomicUsize,
}

/// The `&mut`-requiring [`CombinationSink`] face of the engine; owns the
/// monotone sequence counter while the engine itself stays shareable
/// across worker threads.
struct EngineSink<'e, 'a> {
    engine: &'e StreamingEngine<'a>,
    next_seq: usize,
}

impl<'a> StreamingEngine<'a> {
    fn new(
        planner: &'a Planner,
        baseline: &'a MeasureVector,
        candidates: &'a [Candidate],
        precheck: Option<PatternContext<'a>>,
        delta: Option<DeltaCtx>,
        labels: LabelTable,
        bound_prune: bool,
    ) -> Self {
        let gain_profiles = bound_prune.then(|| {
            candidates
                .iter()
                .map(|c| c.pattern.gain_profile())
                .collect()
        });
        StreamingEngine {
            planner,
            baseline,
            candidates,
            dimensions: planner.config.objective.characteristics(),
            retain_dominated: planner.config.retain_dominated,
            precheck,
            delta,
            labels,
            gain_profiles,
            state: Mutex::new(EngineState {
                skyline: SkylineSet::new(),
                retained: Vec::new(),
            }),
            rejected: AtomicUsize::new(0),
            failed_applications: AtomicUsize::new(0),
            failed_evaluations: AtomicUsize::new(0),
            statically_rejected: AtomicUsize::new(0),
            bound_pruned: AtomicUsize::new(0),
        }
    }

    /// Applies, evaluates and skyline-feeds one combination; returns its
    /// objective, or `None` when it failed or was rejected.
    fn process(&self, seq: usize, combo: &[usize]) -> Option<f64> {
        // Bound-based dominance pre-prune: the combination's sound optimistic
        // score bound is offered to the live frontier *before* the fork. A
        // dominated bound proves the real point (never better per axis)
        // would be rejected as dominated too, so skipping it cannot change
        // the skyline or the retained (frontier-only) set.
        if let Some(profiles) = &self.gain_profiles {
            let gain = combo
                .iter()
                .fold(quality::GainProfile::neutral(), |acc, &i| {
                    acc.combine(&profiles[i])
                });
            let objective = &self.planner.config.objective;
            let bound: Vec<f64> = objective
                .goals()
                .iter()
                .map(|g| match g.direction {
                    crate::objective::Direction::Maximize => 100.0 * gain.cap(g.characteristic),
                    // a minimize axis is best served by the worst possible
                    // score, floored by the estimator's ratio clamp
                    crate::objective::Direction::Minimize => -100.0 * quality::RATIO_CLAMP_MIN,
                })
                .collect();
            let dominated = {
                let state = self.state.lock().expect("engine state");
                state.skyline.dominates_point(&bound)
            };
            if dominated {
                self.bound_pruned.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let (flow, applied, name, cow) = match self.planner.realize_combination(
            combo,
            self.candidates,
            &self.labels,
            self.precheck.as_ref(),
            self.delta.as_ref(),
        ) {
            Realization::Ready {
                flow,
                applied,
                name,
                cow,
            } => (flow, applied, name, cow),
            Realization::Screened => {
                self.statically_rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Realization::ApplyFailed => {
                self.failed_applications.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let measures =
            match self
                .planner
                .evaluate_combination(&flow, self.delta.as_ref(), cow.as_ref())
            {
                Ok(m) => m,
                Err(_) => {
                    self.failed_evaluations.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
        let objective = &self.planner.config.objective;
        if !self.planner.config.policy.admits(self.baseline, &measures)
            || !objective.admits(self.baseline, &measures)
        {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let scores = characteristic_scores(&measures, self.baseline, &self.dimensions);
        // the scalar fed back to steering strategies (beam, greedy) and the
        // oriented point offered to the skyline both come from the user's
        // objective, not an implicit score-sum
        let steer = objective.scalarize(&scores);
        let oriented = objective.oriented(&scores);
        // Alternative construction (description strings, combo clone) is
        // deferred until the skyline verdict: with `retain_dominated` off,
        // the overwhelming majority of combinations are dominated and
        // dropped right here, so they never pay for it.
        let alt = move || Alternative {
            name,
            flow,
            applied: applied
                .iter()
                .map(|a| format!("{} {}", a.pattern, a.point))
                .collect::<Vec<_>>(),
            combo: combo.to_vec(),
            measures,
            scores,
        };
        let mut state = self.state.lock().expect("engine state");
        match state.skyline.insert(seq, oriented) {
            Insertion::Accepted { evicted } => {
                if !self.retain_dominated {
                    for seq in evicted {
                        if let Some(pos) = state.retained.iter().position(|(s, _)| *s == seq) {
                            state.retained.swap_remove(pos);
                        }
                    }
                }
                state.retained.push((seq, alt()));
            }
            Insertion::Dominated => {
                if self.retain_dominated {
                    state.retained.push((seq, alt()));
                }
                // else: the dominated flow is dropped right here, keeping
                // the engine's memory proportional to the frontier
            }
        }
        Some(steer)
    }

    /// Sorts the retained alternatives back into submission order (the
    /// worker pool finishes them out of order) and maps skyline sequence
    /// numbers to final indices — output is deterministic regardless of
    /// thread scheduling.
    fn finish(self) -> Harvest {
        let state = self.state.into_inner().expect("engine state");
        let mut retained = state.retained;
        retained.sort_unstable_by_key(|(seq, _)| *seq);
        let sky_seqs = state.skyline.ids();
        let mut skyline = Vec::with_capacity(sky_seqs.len());
        let mut pos = 0usize;
        for seq in sky_seqs {
            while retained[pos].0 != seq {
                pos += 1;
            }
            skyline.push(pos);
        }
        Harvest {
            alternatives: retained.into_iter().map(|(_, alt)| alt).collect(),
            skyline,
            rejected_by_constraints: self.rejected.into_inner(),
            failed_applications: self.failed_applications.into_inner(),
            failed_evaluations: self.failed_evaluations.into_inner(),
            statically_rejected: self.statically_rejected.into_inner(),
            bound_pruned: self.bound_pruned.into_inner(),
        }
    }
}

impl CombinationSink for EngineSink<'_, '_> {
    fn submit(&mut self, combos: &[Vec<usize>]) -> Vec<Option<f64>> {
        let engine = self.engine;
        let base_seq = self.next_seq;
        self.next_seq += combos.len();
        crate::eval::par_map_indexed(combos.len(), engine.planner.config.workers, |i| {
            engine.process(base_seq + i, &combos[i])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::tpch::{tpch_catalog, tpch_flow};
    use datagen::DirtProfile;
    use quality::MeasureId;

    fn planner(config: PlannerConfig) -> Planner {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(150, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        Planner::new(f, cat, reg, config)
    }

    #[test]
    fn plan_produces_alternatives_and_skyline() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        assert!(out.alternatives.len() > 10);
        assert!(!out.skyline.is_empty());
        assert!(out.skyline.len() <= out.alternatives.len());
        // skyline members must not be dominated
        for &i in &out.skyline {
            for a in &out.alternatives {
                assert!(!crate::skyline::dominates(
                    &a.scores,
                    &out.alternatives[i].scores
                ));
            }
        }
        assert_eq!(out.failed_evaluations, 0);
    }

    #[test]
    fn streaming_matches_materialized_on_fig2() {
        // The acceptance bar: identical skyline (same alternative names)
        // from the streaming exhaustive engine and the old path.
        let p = planner(PlannerConfig::default());
        let streaming = p.plan().unwrap();
        let eager = p.plan_materialized().unwrap();
        assert_eq!(streaming.skyline_names(), eager.skyline_names());
        // with retain_dominated (default) even the full layout matches
        assert_eq!(streaming.alternatives.len(), eager.alternatives.len());
        assert_eq!(streaming.skyline, eager.skyline);
        for (s, e) in streaming.alternatives.iter().zip(&eager.alternatives) {
            assert_eq!(s.name, e.name);
            assert_eq!(s.scores, e.scores);
        }
        assert_eq!(streaming.stats, eager.stats);
        assert_eq!(
            streaming.rejected_by_constraints,
            eager.rejected_by_constraints
        );
    }

    #[test]
    fn dropping_dominated_keeps_only_the_frontier() {
        let config = PlannerConfig {
            retain_dominated: false,
            ..PlannerConfig::default()
        };
        let p = planner(config);
        let lean = p.plan().unwrap();
        let full = p.plan_materialized().unwrap();
        // only frontier members retained, but the frontier is identical
        assert_eq!(lean.alternatives.len(), lean.skyline.len());
        assert_eq!(lean.skyline_names(), full.skyline_names());
        assert!(lean.alternatives.len() < full.alternatives.len());
        // stats describe the same walked space
        assert_eq!(lean.stats, full.stats);
    }

    #[test]
    fn beam_and_greedy_explore_less_and_stay_on_the_true_frontier_scale() {
        let exhaustive = planner(PlannerConfig::default()).plan().unwrap();
        for strategy in [
            SearchStrategyKind::Beam { width: 6 },
            SearchStrategyKind::GreedyHillClimb,
        ] {
            let config = PlannerConfig {
                strategy,
                ..PlannerConfig::default()
            };
            let out = planner(config).plan().unwrap();
            assert!(
                out.stats.enumerated <= exhaustive.stats.enumerated,
                "{strategy} evaluated more than exhaustive"
            );
            assert!(!out.skyline.is_empty(), "{strategy} found no frontier");
            // every frontier point of a partial walk is at least not
            // dominated by anything that walk saw
            for &i in &out.skyline {
                for a in &out.alternatives {
                    assert!(!crate::skyline::dominates(
                        &a.scores,
                        &out.alternatives[i].scores
                    ));
                }
            }
        }
    }

    #[test]
    fn skyline_contains_a_performance_improver() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let best = out.skyline_alternatives().next().unwrap();
        assert!(
            best.scores.iter().any(|&s| s > 100.0),
            "the frontier must improve on the baseline somewhere: {:?}",
            best.scores
        );
    }

    #[test]
    fn skyline_ranked_is_cached_and_best_first() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let ranked = out.skyline_ranked();
        assert_eq!(ranked.len(), out.skyline.len());
        let sums: Vec<f64> = ranked
            .iter()
            .map(|&i| out.alternatives[i].scores.iter().sum())
            .collect();
        assert!(sums.windows(2).all(|w| w[0] >= w[1]), "{sums:?}");
        // iterator agrees with the cached order
        let names: Vec<&str> = out
            .skyline_alternatives()
            .map(|a| a.name.as_str())
            .collect();
        let expect: Vec<&str> = ranked
            .iter()
            .map(|&i| out.alternatives[i].name.as_str())
            .collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn alternatives_keep_source_schemata_constant() {
        // §3: "keeping the data sources schemata constant"
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let base_sources: Vec<_> = p
            .flow()
            .ops_of_kind("extract")
            .iter()
            .map(|n| p.flow().op(*n).unwrap().kind.clone())
            .collect();
        for alt in &out.alternatives {
            let alt_sources: Vec<_> = alt
                .flow
                .ops_of_kind("extract")
                .iter()
                .map(|n| alt.flow.op(*n).unwrap().kind.clone())
                .collect();
            assert_eq!(base_sources.len(), alt_sources.len());
            for k in &base_sources {
                assert!(alt_sources.contains(k));
            }
        }
    }

    #[test]
    fn thousands_of_alternatives_from_demo_flows() {
        // §4: "the automatic addition of FCPs in different positions and
        // combinations on the initial flows will result in thousands of
        // alternative ETL flows"
        let (f, _) = tpch_flow();
        let cat = tpch_catalog(200, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        let config = PlannerConfig {
            policy: DeploymentPolicy {
                top_k_points_per_pattern: usize::MAX,
                min_fitness: 0.0,
                max_patterns_per_flow: 2,
                max_per_pattern: 2,
                ..DeploymentPolicy::balanced()
            },
            max_alternatives: 50_000,
            ..PlannerConfig::default()
        };
        let p = Planner::new(f, cat, reg, config);
        let out = p.plan().unwrap();
        assert!(
            out.alternatives.len() > 1_000,
            "got {} alternatives",
            out.alternatives.len()
        );
        assert!(
            out.skyline.len() < out.alternatives.len() / 5,
            "the skyline must prune most of the space: {} of {}",
            out.skyline.len(),
            out.alternatives.len()
        );
    }

    #[test]
    fn constraints_reject_alternatives() {
        let mut config = PlannerConfig {
            policy: DeploymentPolicy::reliability_first(),
            ..PlannerConfig::default()
        };
        // absurd constraint: nothing may be slower than 1.0× baseline;
        // checkpoints always cost time, so everything is rejected
        config.policy.constraints = vec![fcp::MeasureConstraint {
            measure: MeasureId::CycleTimeMs,
            ratio_vs_baseline: 1.0,
        }];
        let p = planner(config);
        let out = p.plan().unwrap();
        assert!(out.rejected_by_constraints > 0);
    }

    #[test]
    fn report_matches_fig5_shape() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let alt = out.skyline_alternatives().next().unwrap();
        let report = out.report(alt);
        assert_eq!(report.characteristics.len(), Characteristic::ALL.len());
        // drill-down works for performance
        assert!(!report.expand(Characteristic::Performance).is_empty());
    }

    #[test]
    fn simulate_mode_works_end_to_end() {
        let config = PlannerConfig {
            eval_mode: EvalMode::Simulate,
            max_alternatives: 40,
            ..PlannerConfig::default()
        };
        let p = planner(config);
        let out = p.plan().unwrap();
        assert!(!out.alternatives.is_empty());
        assert!(out.baseline.get(MeasureId::Throughput).unwrap() > 0.0);
    }

    #[test]
    fn evaluation_errors_are_counted_not_fatal() {
        // A (deliberately pathological) pattern that renames an extract's
        // source to a table absent from the catalog: the flow still
        // validates structurally and estimation still works, but full
        // simulation fails with `UnknownSource`. With the bugfix the cycle
        // survives and counts the casualty instead of aborting.
        struct BreakSource;
        impl fcp::Pattern for BreakSource {
            fn name(&self) -> &str {
                "BreakSource"
            }
            fn improves(&self) -> Characteristic {
                Characteristic::DataQuality
            }
            fn prerequisites(&self) -> Vec<fcp::Prerequisite> {
                vec![]
            }
            fn candidate_points(
                &self,
                _ctx: &fcp::PatternContext<'_>,
            ) -> Vec<fcp::ApplicationPoint> {
                vec![fcp::ApplicationPoint::Graph]
            }
            fn apply(
                &self,
                flow: &mut EtlFlow,
                point: fcp::ApplicationPoint,
            ) -> Result<fcp::AppliedPattern, fcp::PatternError> {
                let n = flow.ops_of_kind("extract")[0];
                if let etl_model::OpKind::Extract { source, .. } = &mut flow.op_mut(n).unwrap().kind
                {
                    *source = "__missing_table__".into();
                }
                Ok(fcp::AppliedPattern {
                    pattern: "BreakSource".into(),
                    point,
                    added_nodes: vec![],
                })
            }
        }

        let (f, _) = purchases_flow();
        let cat = purchases_catalog(60, &DirtProfile::demo(), 5);
        let mut reg = PatternRegistry::standard_for_catalog(&cat);
        reg.register(BreakSource);
        let config = PlannerConfig {
            eval_mode: EvalMode::Simulate,
            max_alternatives: 50,
            policy: DeploymentPolicy::exhaustive(1),
            ..PlannerConfig::default()
        };
        let p = Planner::new(f, cat, reg, config);
        let out = p.plan().unwrap();
        assert!(
            out.failed_evaluations > 0,
            "the broken pattern must fail simulation"
        );
        assert!(!out.alternatives.is_empty(), "good designs must survive");
        assert_eq!(
            out.stats.enumerated,
            out.alternatives.len()
                + out.failed_evaluations
                + out.failed_applications
                + out.rejected_by_constraints
                + out.statically_rejected
                + out.bound_pruned
        );
    }

    #[test]
    fn bound_pruning_skips_work_but_keeps_the_skyline_bit_identical() {
        // The tentpole acceptance bar: with the dominance pre-pruner active
        // (retain_dominated off, exhaustive, estimate) the frontier must be
        // exactly the unpruned frontier — same names, same scores — while
        // actually skipping combinations. One worker keeps the submission
        // order deterministic so the prune count is stable.
        let run = |bound_prune: bool| {
            planner(PlannerConfig {
                retain_dominated: false,
                workers: 1,
                bound_prune,
                ..PlannerConfig::default()
            })
            .plan()
            .unwrap()
        };
        let pruned = run(true);
        let full = run(false);
        assert!(
            pruned.bound_pruned > 0,
            "the demo sweep must prune at least one dominated-by-bound combination"
        );
        assert_eq!(full.bound_pruned, 0);
        assert_eq!(pruned.skyline_names(), full.skyline_names());
        let score = |out: &PlannerOutcome| -> Vec<(String, Vec<f64>)> {
            let mut v: Vec<_> = out
                .skyline
                .iter()
                .map(|&i| {
                    (
                        out.alternatives[i].name.clone(),
                        out.alternatives[i].scores.clone(),
                    )
                })
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        assert_eq!(score(&pruned), score(&full));
        // pruned combinations were still enumerated (submitted), so the
        // walked space is identical — only the evaluated share shrinks
        assert_eq!(pruned.stats.enumerated, full.stats.enumerated);
    }

    #[test]
    fn bound_pruning_stays_off_where_it_could_be_observed() {
        // retain_dominated (the default) keeps every evaluated alternative;
        // pruning would remove dominated ones, so the gate must hold it off.
        let out = planner(PlannerConfig::default()).plan().unwrap();
        assert_eq!(out.bound_pruned, 0);
        // steering strategies must see every score
        for strategy in [
            SearchStrategyKind::Beam { width: 6 },
            SearchStrategyKind::GreedyHillClimb,
        ] {
            let out = planner(PlannerConfig {
                strategy,
                retain_dominated: false,
                ..PlannerConfig::default()
            })
            .plan()
            .unwrap();
            assert_eq!(out.bound_pruned, 0, "{strategy} must not prune");
        }
    }

    #[test]
    fn prescreening_preserves_the_frontier() {
        // The pre-screen must be invisible on valid workloads: identical
        // skyline and space accounting with and without it, on both demo
        // flows (the acceptance bar for turning it on by default).
        let screened = planner(PlannerConfig::default()).plan().unwrap();
        let unscreened = planner(PlannerConfig {
            prescreen: false,
            ..PlannerConfig::default()
        })
        .plan()
        .unwrap();
        assert_eq!(screened.skyline_names(), unscreened.skyline_names());
        assert_eq!(screened.alternatives.len(), unscreened.alternatives.len());
        assert_eq!(screened.stats, unscreened.stats);
        assert_eq!(screened.statically_rejected, 0);
        assert_eq!(unscreened.statically_rejected, 0);

        let tpch = |prescreen: bool| {
            let (f, _) = tpch_flow();
            let cat = tpch_catalog(120, &DirtProfile::demo(), 5);
            let reg = PatternRegistry::standard_for_catalog(&cat);
            let config = PlannerConfig {
                prescreen,
                max_alternatives: 2_000,
                ..PlannerConfig::default()
            };
            Planner::new(f, cat, reg, config).plan().unwrap()
        };
        let on = tpch(true);
        let off = tpch(false);
        assert_eq!(on.skyline_names(), off.skyline_names());
        assert_eq!(on.alternatives.len(), off.alternatives.len());
        assert_eq!(on.statically_rejected, 0);
    }

    #[test]
    fn non_applicable_points_are_prescreened() {
        // A pattern that advertises points without honouring its own
        // prerequisites (a buggy `candidate_points` override): the
        // precondition screen must drop those combinations before apply.
        struct WrongPoint;
        impl fcp::Pattern for WrongPoint {
            fn name(&self) -> &str {
                "WrongPoint"
            }
            fn improves(&self) -> Characteristic {
                Characteristic::Performance
            }
            fn prerequisites(&self) -> Vec<fcp::Prerequisite> {
                // requires a node point, yet advertises the graph point
                vec![fcp::Prerequisite::IsNode]
            }
            fn candidate_points(
                &self,
                _ctx: &fcp::PatternContext<'_>,
            ) -> Vec<fcp::ApplicationPoint> {
                vec![fcp::ApplicationPoint::Graph]
            }
            fn apply(
                &self,
                _flow: &mut EtlFlow,
                _point: fcp::ApplicationPoint,
            ) -> Result<fcp::AppliedPattern, fcp::PatternError> {
                panic!("a prescreened pattern must never reach apply");
            }
        }

        let (f, _) = purchases_flow();
        let cat = purchases_catalog(60, &DirtProfile::demo(), 5);
        let mut reg = PatternRegistry::standard_for_catalog(&cat);
        reg.register(WrongPoint);
        let config = PlannerConfig {
            // room for every single-candidate combination: enumeration is
            // ordered by pattern name and `WrongPoint` sorts last
            max_alternatives: 500,
            policy: DeploymentPolicy::exhaustive(1),
            ..PlannerConfig::default()
        };
        let p = Planner::new(f, cat, reg, config);
        let out = p.plan().unwrap();
        assert!(
            out.statically_rejected > 0,
            "the wrong point must be pruned"
        );
        assert_eq!(out.failed_applications, 0);
        assert_eq!(out.failed_evaluations, 0);
        assert!(!out.alternatives.is_empty(), "good designs must survive");
    }

    #[test]
    fn invalid_applications_are_prescreened_before_evaluation() {
        // A pattern whose application breaks the flow (rewrites the filter
        // predicate over a column that does not exist). With the structural
        // screen on, the broken designs are counted as static rejections
        // and evaluation never sees them; with it off, the same workload
        // pays for the failures at evaluation time.
        struct GhostColumn;
        impl fcp::Pattern for GhostColumn {
            fn name(&self) -> &str {
                "GhostColumn"
            }
            fn improves(&self) -> Characteristic {
                Characteristic::DataQuality
            }
            fn prerequisites(&self) -> Vec<fcp::Prerequisite> {
                vec![]
            }
            fn candidate_points(
                &self,
                _ctx: &fcp::PatternContext<'_>,
            ) -> Vec<fcp::ApplicationPoint> {
                vec![fcp::ApplicationPoint::Graph]
            }
            fn apply(
                &self,
                flow: &mut EtlFlow,
                point: fcp::ApplicationPoint,
            ) -> Result<fcp::AppliedPattern, fcp::PatternError> {
                let n = flow.ops_of_kind("filter")[0];
                if let etl_model::OpKind::Filter { predicate } = &mut flow.op_mut(n).unwrap().kind {
                    *predicate = etl_model::expr::Expr::col("__ghost__");
                }
                Ok(fcp::AppliedPattern {
                    pattern: "GhostColumn".into(),
                    point,
                    added_nodes: vec![],
                })
            }
        }

        let run = |prescreen: bool| {
            let (f, _) = purchases_flow();
            let cat = purchases_catalog(60, &DirtProfile::demo(), 5);
            let mut reg = PatternRegistry::standard_for_catalog(&cat);
            reg.register(GhostColumn);
            let config = PlannerConfig {
                eval_mode: EvalMode::Simulate,
                max_alternatives: 500,
                policy: DeploymentPolicy::exhaustive(1),
                prescreen,
                ..PlannerConfig::default()
            };
            Planner::new(f, cat, reg, config).plan().unwrap()
        };

        let screened = run(true);
        assert!(
            screened.statically_rejected > 0,
            "broken flows must be pruned"
        );
        assert_eq!(
            screened.failed_evaluations, 0,
            "evaluation must never see them"
        );
        assert!(
            !screened.alternatives.is_empty(),
            "good designs must survive"
        );

        let unscreened = run(false);
        assert_eq!(unscreened.statically_rejected, 0);
        assert!(
            unscreened.failed_evaluations > 0,
            "without the screen the same workload fails at evaluation time"
        );
        assert_eq!(screened.skyline_names(), unscreened.skyline_names());
    }

    #[test]
    fn delta_evaluation_is_bit_identical_to_full() {
        // The tentpole's acceptance bar: with `delta_eval` on (default)
        // every alternative's MeasureVector equals the from-scratch value
        // exactly — not approximately — and the frontier is unchanged, on
        // both planner paths.
        let run = |delta_eval: bool, materialized: bool| {
            let p = planner(PlannerConfig {
                delta_eval,
                ..PlannerConfig::default()
            });
            if materialized {
                p.plan_materialized().unwrap()
            } else {
                p.plan().unwrap()
            }
        };
        for materialized in [false, true] {
            let fast = run(true, materialized);
            let slow = run(false, materialized);
            assert_eq!(fast.skyline_names(), slow.skyline_names());
            assert_eq!(fast.skyline, slow.skyline);
            assert_eq!(fast.alternatives.len(), slow.alternatives.len());
            for (a, b) in fast.alternatives.iter().zip(&slow.alternatives) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    a.measures, b.measures,
                    "delta-evaluated measures must be bit-identical for {}",
                    a.name
                );
            }
            assert_eq!(fast.statically_rejected, slow.statically_rejected);
            assert_eq!(fast.failed_applications, slow.failed_applications);
            assert_eq!(fast.failed_evaluations, slow.failed_evaluations);
        }
    }

    #[test]
    fn delta_evaluation_screens_broken_applications_identically() {
        // The delta post-screen must reject exactly the combinations the
        // full screen rejects (a pattern whose application breaks schema
        // consistency), with identical counters.
        struct GhostColumn;
        impl fcp::Pattern for GhostColumn {
            fn name(&self) -> &str {
                "GhostColumn"
            }
            fn improves(&self) -> Characteristic {
                Characteristic::DataQuality
            }
            fn prerequisites(&self) -> Vec<fcp::Prerequisite> {
                vec![]
            }
            fn candidate_points(
                &self,
                _ctx: &fcp::PatternContext<'_>,
            ) -> Vec<fcp::ApplicationPoint> {
                vec![fcp::ApplicationPoint::Graph]
            }
            fn apply(
                &self,
                flow: &mut EtlFlow,
                point: fcp::ApplicationPoint,
            ) -> Result<fcp::AppliedPattern, fcp::PatternError> {
                let n = flow.ops_of_kind("filter")[0];
                if let etl_model::OpKind::Filter { predicate } = &mut flow.op_mut(n).unwrap().kind {
                    *predicate = etl_model::expr::Expr::col("__ghost__");
                }
                Ok(fcp::AppliedPattern {
                    pattern: "GhostColumn".into(),
                    point,
                    added_nodes: vec![],
                })
            }
        }

        let run = |delta_eval: bool| {
            let (f, _) = purchases_flow();
            let cat = purchases_catalog(60, &DirtProfile::demo(), 5);
            let mut reg = PatternRegistry::standard_for_catalog(&cat);
            reg.register(GhostColumn);
            let config = PlannerConfig {
                max_alternatives: 500,
                policy: DeploymentPolicy::exhaustive(2),
                delta_eval,
                ..PlannerConfig::default()
            };
            Planner::new(f, cat, reg, config).plan().unwrap()
        };
        let fast = run(true);
        let slow = run(false);
        assert!(fast.statically_rejected > 0, "broken flows must be pruned");
        assert_eq!(fast.statically_rejected, slow.statically_rejected);
        assert_eq!(fast.failed_evaluations, 0);
        assert_eq!(fast.skyline_names(), slow.skyline_names());
    }
}
