//! The Planner: one full generation → application → estimation → skyline
//! cycle (Fig. 3).

use crate::apply::{apply_combination, combination_name};
use crate::eval::{characteristic_scores, evaluate_flow, evaluate_pool, Alternative, EvalMode};
use crate::explore::{enumerate_combinations, SpaceStats};
use crate::generate::{generate_candidates, Candidate};
use crate::skyline::pareto_skyline;
use datagen::Catalog;
use etl_model::EtlFlow;
use fcp::{DeploymentPolicy, PatternRegistry};
use quality::{Characteristic, MeasureVector, QualityReport, SourceStats};
use std::collections::HashMap;
use std::fmt;

/// Planner configuration (the "user-defined configurations" input of
/// Fig. 3).
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Deployment policy (pattern selection, combination depth, caps).
    pub policy: DeploymentPolicy,
    /// Estimation mode.
    pub eval_mode: EvalMode,
    /// Worker threads for concurrent evaluation.
    pub workers: usize,
    /// Hard cap on enumerated alternatives per cycle.
    pub max_alternatives: usize,
    /// The quality dimensions of the scatter-plot (Fig. 4 uses
    /// performance × data quality × reliability).
    pub dimensions: Vec<Characteristic>,
    /// RNG seed forwarded to simulation-mode evaluation.
    pub seed: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            policy: DeploymentPolicy::balanced(),
            eval_mode: EvalMode::Estimate,
            workers: 4,
            max_alternatives: 5_000,
            dimensions: vec![
                Characteristic::Performance,
                Characteristic::DataQuality,
                Characteristic::Reliability,
            ],
            seed: 0xBEEF,
        }
    }
}

/// Planner errors.
#[derive(Debug, Clone)]
pub enum PlannerError {
    /// The initial flow failed validation.
    InvalidFlow(String),
    /// Candidate generation failed.
    Pattern(String),
    /// Baseline evaluation failed.
    Eval(String),
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::InvalidFlow(e) => write!(f, "invalid initial flow: {e}"),
            PlannerError::Pattern(e) => write!(f, "pattern generation failed: {e}"),
            PlannerError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for PlannerError {}

/// The result of one planning cycle.
pub struct PlannerOutcome {
    /// Baseline (initial flow) measures.
    pub baseline: MeasureVector,
    /// The candidates that were considered.
    pub candidates: Vec<Candidate>,
    /// All evaluated, policy-admitted alternatives.
    pub alternatives: Vec<Alternative>,
    /// Indices (into `alternatives`) of the Pareto frontier, ascending —
    /// the only designs presented to the user (Fig. 4).
    pub skyline: Vec<usize>,
    /// Exploration-space statistics.
    pub stats: SpaceStats,
    /// Alternatives rejected by policy measure constraints.
    pub rejected_by_constraints: usize,
    /// Combinations that failed during application (conflicts discovered
    /// at apply time).
    pub failed_applications: usize,
}

impl PlannerOutcome {
    /// Iterator over the skyline alternatives, best-sum-first.
    pub fn skyline_alternatives(&self) -> impl Iterator<Item = &Alternative> {
        let mut idx = self.skyline.clone();
        idx.sort_by(|&a, &b| {
            let sa: f64 = self.alternatives[a].scores.iter().sum();
            let sb: f64 = self.alternatives[b].scores.iter().sum();
            sb.total_cmp(&sa)
        });
        idx.into_iter().map(|i| &self.alternatives[i])
    }

    /// The Fig. 5 report for one alternative: relative change of every
    /// measure against the initial flow, grouped by characteristic with
    /// drill-down.
    pub fn report(&self, alt: &Alternative) -> QualityReport {
        QualityReport::build(alt.name.clone(), &self.baseline, &alt.measures)
    }
}

/// The POIESIS Planner.
pub struct Planner {
    flow: EtlFlow,
    catalog: Catalog,
    registry: PatternRegistry,
    config: PlannerConfig,
    stats_cache: HashMap<String, SourceStats>,
}

impl Planner {
    /// Creates a planner for an initial flow over a source catalog.
    pub fn new(
        flow: EtlFlow,
        catalog: Catalog,
        registry: PatternRegistry,
        config: PlannerConfig,
    ) -> Self {
        let stats_cache = quality::estimator::source_stats(&catalog);
        Planner {
            flow,
            catalog,
            registry,
            config,
            stats_cache,
        }
    }

    /// The current base flow.
    pub fn flow(&self) -> &EtlFlow {
        &self.flow
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The pattern registry (palette).
    pub fn registry(&self) -> &PatternRegistry {
        &self.registry
    }

    /// The configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Replaces the base flow (used by the iterative session when the user
    /// selects a design).
    pub fn set_flow(&mut self, flow: EtlFlow) {
        self.flow = flow;
    }

    /// Runs one full planning cycle.
    pub fn plan(&self) -> Result<PlannerOutcome, PlannerError> {
        self.flow
            .validate()
            .map_err(|e| PlannerError::InvalidFlow(e.to_string()))?;
        let baseline = evaluate_flow(
            &self.flow,
            &self.catalog,
            &self.stats_cache,
            self.config.eval_mode,
            self.config.seed,
        )
        .map_err(|e| PlannerError::Eval(e.to_string()))?;

        // 1. pattern generation
        let candidates = generate_candidates(&self.flow, &self.registry, &self.config.policy)
            .map_err(|e| PlannerError::Pattern(e.to_string()))?;

        // 2. combination enumeration + application
        let (combos, stats) = enumerate_combinations(
            &candidates,
            &self.config.policy,
            self.config.max_alternatives,
        );
        let mut flows = Vec::with_capacity(combos.len());
        let mut metas = Vec::with_capacity(combos.len());
        let mut failed_applications = 0usize;
        for combo in &combos {
            let refs: Vec<&Candidate> = combo.iter().map(|&i| &candidates[i]).collect();
            let name = combination_name(&self.flow, &refs);
            match apply_combination(&self.flow, &refs, name.clone()) {
                Ok((flow, applied)) => {
                    let descs = applied
                        .iter()
                        .map(|a| format!("{} {}", a.pattern, a.point))
                        .collect::<Vec<_>>();
                    flows.push(flow);
                    metas.push((name, descs, combo.clone()));
                }
                Err(_) => failed_applications += 1,
            }
        }

        // 3. concurrent measures estimation
        struct FlowRef<'a>(&'a EtlFlow);
        impl AsRef<EtlFlow> for FlowRef<'_> {
            fn as_ref(&self) -> &EtlFlow {
                self.0
            }
        }
        let flow_refs: Vec<FlowRef<'_>> = flows.iter().map(FlowRef).collect();
        let measures = evaluate_pool(
            &flow_refs,
            &self.catalog,
            &self.stats_cache,
            self.config.eval_mode,
            self.config.workers,
            self.config.seed,
        );
        drop(flow_refs);

        // assemble, applying policy measure constraints
        let mut alternatives = Vec::with_capacity(flows.len());
        let mut rejected = 0usize;
        for ((flow, (name, applied, combo)), m) in
            flows.into_iter().zip(metas).zip(measures)
        {
            let m = m.map_err(|e| PlannerError::Eval(e.to_string()))?;
            if !self.config.policy.admits(&baseline, &m) {
                rejected += 1;
                continue;
            }
            let scores = characteristic_scores(&m, &baseline, &self.config.dimensions);
            alternatives.push(Alternative {
                name,
                flow,
                applied,
                combo,
                measures: m,
                scores,
            });
        }

        // 4. skyline
        let points: Vec<Vec<f64>> = alternatives.iter().map(|a| a.scores.clone()).collect();
        let skyline = pareto_skyline(&points);

        Ok(PlannerOutcome {
            baseline,
            candidates,
            alternatives,
            skyline,
            stats,
            rejected_by_constraints: rejected,
            failed_applications,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::tpch::{tpch_catalog, tpch_flow};
    use datagen::DirtProfile;
    use quality::MeasureId;

    fn planner(config: PlannerConfig) -> Planner {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(150, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        Planner::new(f, cat, reg, config)
    }

    #[test]
    fn plan_produces_alternatives_and_skyline() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        assert!(out.alternatives.len() > 10);
        assert!(!out.skyline.is_empty());
        assert!(out.skyline.len() <= out.alternatives.len());
        // skyline members must not be dominated
        for &i in &out.skyline {
            for a in &out.alternatives {
                assert!(!crate::skyline::dominates(&a.scores, &out.alternatives[i].scores));
            }
        }
    }

    #[test]
    fn skyline_contains_a_performance_improver() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let best = out.skyline_alternatives().next().unwrap();
        assert!(
            best.scores.iter().any(|&s| s > 100.0),
            "the frontier must improve on the baseline somewhere: {:?}",
            best.scores
        );
    }

    #[test]
    fn alternatives_keep_source_schemata_constant() {
        // §3: "keeping the data sources schemata constant"
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let base_sources: Vec<_> = p
            .flow()
            .ops_of_kind("extract")
            .iter()
            .map(|n| p.flow().op(*n).unwrap().kind.clone())
            .collect();
        for alt in &out.alternatives {
            let alt_sources: Vec<_> = alt
                .flow
                .ops_of_kind("extract")
                .iter()
                .map(|n| alt.flow.op(*n).unwrap().kind.clone())
                .collect();
            assert_eq!(base_sources.len(), alt_sources.len());
            for k in &base_sources {
                assert!(alt_sources.contains(k));
            }
        }
    }

    #[test]
    fn thousands_of_alternatives_from_demo_flows() {
        // §4: "the automatic addition of FCPs in different positions and
        // combinations on the initial flows will result in thousands of
        // alternative ETL flows"
        let (f, _) = tpch_flow();
        let cat = tpch_catalog(200, &DirtProfile::demo(), 5);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        let config = PlannerConfig {
            policy: DeploymentPolicy {
                top_k_points_per_pattern: usize::MAX,
                min_fitness: 0.0,
                max_patterns_per_flow: 2,
                max_per_pattern: 2,
                ..DeploymentPolicy::balanced()
            },
            max_alternatives: 50_000,
            ..PlannerConfig::default()
        };
        let p = Planner::new(f, cat, reg, config);
        let out = p.plan().unwrap();
        assert!(
            out.alternatives.len() > 1_000,
            "got {} alternatives",
            out.alternatives.len()
        );
        assert!(
            out.skyline.len() < out.alternatives.len() / 5,
            "the skyline must prune most of the space: {} of {}",
            out.skyline.len(),
            out.alternatives.len()
        );
    }

    #[test]
    fn constraints_reject_alternatives() {
        let mut config = PlannerConfig::default();
        config.policy = DeploymentPolicy::reliability_first();
        // absurd constraint: nothing may be slower than 1.0× baseline;
        // checkpoints always cost time, so everything is rejected
        config.policy.constraints = vec![fcp::MeasureConstraint {
            measure: MeasureId::CycleTimeMs,
            ratio_vs_baseline: 1.0,
        }];
        let p = planner(config);
        let out = p.plan().unwrap();
        assert!(out.rejected_by_constraints > 0);
    }

    #[test]
    fn report_matches_fig5_shape() {
        let p = planner(PlannerConfig::default());
        let out = p.plan().unwrap();
        let alt = out.skyline_alternatives().next().unwrap();
        let report = out.report(alt);
        assert_eq!(report.characteristics.len(), Characteristic::ALL.len());
        // drill-down works for performance
        assert!(!report.expand(Characteristic::Performance).is_empty());
    }

    #[test]
    fn simulate_mode_works_end_to_end() {
        let config = PlannerConfig {
            eval_mode: EvalMode::Simulate,
            max_alternatives: 40,
            ..PlannerConfig::default()
        };
        let p = planner(config);
        let out = p.plan().unwrap();
        assert!(!out.alternatives.is_empty());
        assert!(out.baseline.get(MeasureId::Throughput).unwrap() > 0.0);
    }
}
