//! Pattern generation (Fig. 3, first stage): enumerate every valid
//! `(pattern, application point)` instantiation on the current flow, ranked
//! by heuristic fitness and filtered by the deployment policy.

use etl_model::EtlFlow;
use fcp::{ApplicationPoint, DeploymentPolicy, Pattern, PatternContext, PatternRegistry};
use std::sync::Arc;

/// One candidate application: a pattern at a concrete valid point.
#[derive(Clone)]
pub struct Candidate {
    /// The pattern (shared with the registry).
    pub pattern: Arc<dyn Pattern>,
    /// Where it would be applied.
    pub point: ApplicationPoint,
    /// Heuristic fitness of this placement in `[0, 1]`.
    pub fitness: f64,
}

impl Candidate {
    /// `"PatternName@point"` label used in alternative names.
    pub fn label(&self) -> String {
        format!("{}{}", self.pattern.name(), self.point)
    }

    /// Human-readable description against a flow.
    pub fn describe(&self, flow: &EtlFlow) -> String {
        format!("{} at {}", self.pattern.name(), self.point.describe(flow))
    }
}

impl std::fmt::Debug for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Candidate")
            .field("pattern", &self.pattern.name())
            .field("point", &self.point)
            .field("fitness", &self.fitness)
            .finish()
    }
}

/// Enumerates every valid candidate on `flow`, applying the policy's
/// priority filter, fitness threshold and per-pattern top-k cap.
///
/// The paper's §3 guarantee holds before capping: "as opposed to manual
/// deployment, our tool guarantees that all of the potential application
/// points on the ETL flow are checked for each FCP". Capping only limits
/// what is *kept*, and [`generate_uncapped`] exposes the full set.
pub fn generate_candidates(
    flow: &EtlFlow,
    registry: &PatternRegistry,
    policy: &DeploymentPolicy,
) -> Result<Vec<Candidate>, fcp::PatternError> {
    let all = generate_uncapped(flow, &registry.filtered(&policy.priorities))?;
    let mut out = Vec::new();
    // group per pattern, apply threshold + top-k
    let mut by_pattern: std::collections::HashMap<String, Vec<Candidate>> = Default::default();
    for c in all {
        by_pattern
            .entry(c.pattern.name().to_string())
            .or_default()
            .push(c);
    }
    for (_, mut group) in by_pattern {
        group.retain(|c| c.fitness >= policy.min_fitness);
        group.sort_by(|a, b| b.fitness.total_cmp(&a.fitness).then(a.point.cmp(&b.point)));
        group.truncate(policy.top_k_points_per_pattern);
        out.extend(group);
    }
    // deterministic order: by pattern name then point
    out.sort_by(|a, b| {
        a.pattern
            .name()
            .cmp(b.pattern.name())
            .then(a.point.cmp(&b.point))
    });
    Ok(out)
}

/// All valid candidates with no policy filtering (used by the complexity
/// experiments and the manual-baseline comparison).
pub fn generate_uncapped(
    flow: &EtlFlow,
    registry: &PatternRegistry,
) -> Result<Vec<Candidate>, fcp::PatternError> {
    let ctx = PatternContext::new(flow)?;
    let mut out = Vec::new();
    for pattern in registry.iter() {
        for point in pattern.candidate_points(&ctx) {
            let fitness = pattern.fitness(&ctx, point);
            out.push(Candidate {
                pattern: Arc::clone(pattern),
                point,
                fitness,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::fig2::{purchases_catalog, purchases_flow};
    use datagen::DirtProfile;
    use quality::Characteristic;

    fn setup() -> (EtlFlow, PatternRegistry) {
        let (f, _) = purchases_flow();
        let cat = purchases_catalog(100, &DirtProfile::demo(), 1);
        let reg = PatternRegistry::standard_for_catalog(&cat);
        (f, reg)
    }

    #[test]
    fn uncapped_checks_every_point_for_every_pattern() {
        let (f, reg) = setup();
        let all = generate_uncapped(&f, &reg).unwrap();
        // every candidate is valid at its point
        let ctx = PatternContext::new(&f).unwrap();
        for c in &all {
            assert!(c.pattern.applicable(&ctx, c.point), "{}", c.describe(&f));
        }
        // edge patterns found many points: the flow has 11 edges
        let fnv = all
            .iter()
            .filter(|c| c.pattern.name() == "FilterNullValues")
            .count();
        assert!(fnv >= 4, "expected several null-filter points, got {fnv}");
        // graph patterns appear exactly once each
        for g in ["EncryptChannels", "UpgradeResources"] {
            assert_eq!(all.iter().filter(|c| c.pattern.name() == g).count(), 1);
        }
    }

    #[test]
    fn policy_filters_by_characteristic() {
        let (f, reg) = setup();
        let mut policy = fcp::DeploymentPolicy::balanced();
        policy.priorities = vec![Characteristic::Reliability];
        policy.min_fitness = 0.0;
        let cands = generate_candidates(&f, &reg, &policy).unwrap();
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|c| c.pattern.name() == "AddCheckpoint"));
    }

    #[test]
    fn policy_top_k_caps_per_pattern() {
        let (f, reg) = setup();
        let mut policy = fcp::DeploymentPolicy::exhaustive(2);
        policy.top_k_points_per_pattern = 2;
        let cands = generate_candidates(&f, &reg, &policy).unwrap();
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for c in &cands {
            *counts.entry(c.pattern.name()).or_default() += 1;
        }
        assert!(counts.values().all(|&n| n <= 2));
    }

    #[test]
    fn fitness_threshold_respected() {
        let (f, reg) = setup();
        let mut policy = fcp::DeploymentPolicy::exhaustive(2);
        policy.min_fitness = 0.5;
        let cands = generate_candidates(&f, &reg, &policy).unwrap();
        assert!(cands.iter().all(|c| c.fitness >= 0.5));
    }

    #[test]
    fn deterministic_ordering() {
        let (f, reg) = setup();
        let policy = fcp::DeploymentPolicy::balanced();
        let a = generate_candidates(&f, &reg, &policy).unwrap();
        let b = generate_candidates(&f, &reg, &policy).unwrap();
        let la: Vec<String> = a.iter().map(|c| c.label()).collect();
        let lb: Vec<String> = b.iter().map(|c| c.label()).collect();
        assert_eq!(la, lb);
    }
}
