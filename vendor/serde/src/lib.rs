//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface the POIESIS crates actually consume: the
//! `Serialize` / `Deserialize` traits (as markers), the derive macros
//! (which expand to nothing), and — since the facade API grew wire DTOs —
//! the [`json`] module, a real JSON [`json::Value`] tree with a strict
//! parser and canonical printer that types implement via [`ToJson`] /
//! [`FromJson`]. The marker derives still exist so model types advertise
//! intent and can switch to the real `serde` without source changes.

pub mod json;

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Conversion into the JSON data model — the working half of
/// [`Serialize`] until the real serde can be depended on.
pub trait ToJson {
    /// The JSON representation of `self`. Only finite numbers may appear;
    /// construction through [`json::Value::number`] enforces this.
    fn to_json(&self) -> json::Value;

    /// `self` printed as a canonical JSON document.
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

/// Conversion out of the JSON data model — the working half of
/// [`Deserialize`].
pub trait FromJson: Sized {
    /// Rebuilds `Self` from a JSON value, rejecting malformed shapes.
    fn from_json(value: &json::Value) -> Result<Self, json::JsonError>;

    /// Parses a JSON document and rebuilds `Self`.
    fn from_json_str(text: &str) -> Result<Self, json::JsonError> {
        Self::from_json(&json::Value::parse(text)?)
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
