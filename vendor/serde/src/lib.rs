//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal surface the POIESIS crates actually consume: the
//! `Serialize` / `Deserialize` traits (as markers) and the derive macros
//! (which expand to nothing). No crate in the workspace performs real
//! serialization yet; the derives exist so model types advertise intent and
//! can switch to the real `serde` without source changes.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
