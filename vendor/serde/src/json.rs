//! A minimal, real JSON data model: the serialization backend of the
//! vendored serde stand-in.
//!
//! The original stand-in only provided marker traits; the facade API's
//! wire DTOs (`poiesis::api`) need actual, lossless round-trips, so this
//! module implements the self-describing [`Value`] tree with a strict
//! parser and a canonical printer. Numbers are `f64` printed with Rust's
//! shortest round-trippable formatting, so `parse(v.to_string()) == v`
//! holds for every finite number — the property the DTO proptests pin
//! down. Non-finite numbers are rejected at construction (JSON cannot
//! represent them).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are kept sorted so printing is canonical.
    Object(BTreeMap<String, Value>),
}

/// Parse or conversion failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Value {
    /// Wraps a number, rejecting NaN/infinity (unrepresentable in JSON).
    pub fn number(n: f64) -> Result<Value, JsonError> {
        if n.is_finite() {
            Ok(Value::Number(n))
        } else {
            err(format!("non-finite number {n} cannot be serialized"))
        }
    }

    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// The value as a bool, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => err(format!("{what}: expected bool, got {}", other.kind())),
        }
    }

    /// The value as a finite number, or an error naming `what`.
    pub fn as_number(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Value::Number(n) => Ok(*n),
            other => err(format!("{what}: expected number, got {}", other.kind())),
        }
    }

    /// The value as a non-negative integer, or an error naming `what`.
    pub fn as_usize(&self, what: &str) -> Result<usize, JsonError> {
        let n = self.as_number(what)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64 {
            Ok(n as usize)
        } else {
            err(format!("{what}: expected non-negative integer, got {n}"))
        }
    }

    /// The value as a string slice, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, JsonError> {
        match self {
            Value::String(s) => Ok(s),
            other => err(format!("{what}: expected string, got {}", other.kind())),
        }
    }

    /// The value as an array, or an error naming `what`.
    pub fn as_array(&self, what: &str) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(a) => Ok(a),
            other => err(format!("{what}: expected array, got {}", other.kind())),
        }
    }

    /// The value as an object, or an error naming `what`.
    pub fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, JsonError> {
        match self {
            Value::Object(o) => Ok(o),
            other => err(format!("{what}: expected object, got {}", other.kind())),
        }
    }

    /// Required object member `key`.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        self.as_object(key)?
            .get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// Optional object member `key` (`None` when absent or `null`).
    pub fn get_opt(&self, key: &str) -> Result<Option<&Value>, JsonError> {
        Ok(self.as_object(key)?.get(key).filter(|v| **v != Value::Null))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Strict parse of one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                // `{:?}` prints the shortest string that parses back to the
                // same f64 — the lossless-round-trip guarantee.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{n:.0}")
                } else {
                    write!(f, "{n:?}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            let c = match code {
                                // high surrogate: astral characters arrive
                                // as a \uD800-\uDBFF + \uDC00-\uDFFF pair
                                // (how stock encoders like Python's
                                // json.dumps emit non-BMP text)
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return err("unpaired high surrogate");
                                    }
                                    self.pos += 2;
                                    let low = self.hex_escape()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return err(format!("invalid low surrogate {low:04x}"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| JsonError("invalid surrogate pair".into()))?
                                }
                                0xDC00..=0xDFFF => return err("unpaired low surrogate"),
                                c => char::from_u32(c)
                                    .ok_or_else(|| JsonError(format!("invalid codepoint {c}")))?,
                            };
                            out.push(c);
                        }
                        _ => return err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return err("unterminated string"),
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at
    /// the `u`; on exit it is at the last hex digit (the caller's shared
    /// `pos += 1` then steps past the whole escape).
    fn hex_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
        let hex = std::str::from_utf8(hex).map_err(|_| JsonError("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError(format!("invalid \\u escape `{hex}`")))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid utf-8".into()))?;
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError(format!("invalid number `{text}`")))?;
        Value::number(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "1.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn shortest_float_formatting_round_trips() {
        for n in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -2.5e17] {
            let v = Value::Number(n);
            let back = Value::parse(&v.to_string()).unwrap();
            assert_eq!(back.as_number("n").unwrap(), n);
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":{"e":true}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1}";
        let v = Value::String(s.into());
        let back = Value::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str("s").unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_characters() {
        // how stock encoders (Python json.dumps, ensure_ascii=True) ship
        // non-BMP text: an escaped surrogate pair
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str("s").unwrap(), "\u{1F600}");
        // we emit the raw character, and raw UTF-8 parses too, so the
        // round trip survives either way
        assert_eq!(v.to_string(), "\"\u{1F600}\"");
        assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
        for bad in [
            r#""\ud83d""#,
            r#""\ud83dxy""#,
            r#""\ude00""#,
            r#""\ud83dA""#,
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\":1,\"a\":2}",
            "1 2",
            "\"unterminated",
            "{\"a\"}",
            "[01x]",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_are_unrepresentable() {
        assert!(Value::number(f64::NAN).is_err());
        assert!(Value::number(f64::INFINITY).is_err());
        assert!(Value::number(1.0).is_ok());
    }

    #[test]
    fn accessors_name_the_offending_field() {
        let v = Value::parse(r#"{"n":"not a number"}"#).unwrap();
        let e = v.get("n").unwrap().as_number("n").unwrap_err();
        assert!(e.to_string().contains("n"), "{e}");
        assert!(v.get("missing").is_err());
        assert!(v.get_opt("missing").unwrap().is_none());
    }
}
