//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! `#[derive(Serialize, Deserialize)]` on the model types compiles to
//! nothing; the real impls arrive when the workspace can depend on the real
//! serde. The `serde` helper attribute is accepted so field annotations do
//! not break the build if they are introduced later.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
