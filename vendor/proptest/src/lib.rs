//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, [`prop_oneof!`], ranges and tuples as
//! strategies, simple regex-class string strategies (`"[a-z]{0,8}"` style),
//! [`collection::vec`], [`arbitrary::any`], and [`sample::Index`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs via the assertion
//!   message but is not minimized;
//! * **deterministic** — the RNG seed is derived from the test name, so runs
//!   are reproducible and CI is stable;
//! * regex strategies support only concatenations of literals and
//!   `[...]{m,n}` character classes, which covers every pattern in-tree.

pub mod test_runner {
    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Mirror of `proptest::test_runner::TestCaseError`.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// SplitMix64 — small, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from the test name (FNV-1a) so every run
        /// of a given test explores the same cases.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Generate-only mirror of `proptest::strategy::Strategy`.
    pub trait Strategy {
        type Value;

        fn gen(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Bounded recursion by unrolling: level 0 is `self` (the leaves),
        /// level *d* is `recurse(level d-1)`. Generated values therefore
        /// nest at most `depth` levels — no shrinking is needed to keep
        /// them finite.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut level = self.boxed();
            for _ in 0..depth {
                level = recurse(level).boxed();
            }
            level
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.gen(rng)))
        }
    }

    /// A clonable, type-erased strategy (a shared generator closure).
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn gen(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn gen(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn gen(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen(rng)).gen(rng)
        }
    }

    /// Uniform choice between boxed alternatives — backs `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn gen(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len());
            self.arms[i].gen(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn gen(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `"[a-z][a-z0-9_]{0,8}"`-style patterns: a concatenation of literal
    /// characters and `[...]` classes, each optionally repeated `{m}` or
    /// `{m,n}` times. That is the entire regex dialect used in-tree.
    impl Strategy for &'static str {
        type Value = String;

        fn gen(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (chars, lo, hi) in &atoms {
                let n = lo + rng.below(hi - lo + 1);
                for _ in 0..n {
                    out.push(chars[rng.below(chars.len())]);
                }
            }
            out
        }
    }

    type Atom = (Vec<char>, usize, usize);

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut it = pat.chars().peekable();
        while let Some(c) = it.next() {
            let chars = if c == '[' {
                let raw: Vec<char> = it.by_ref().take_while(|&c| c != ']').collect();
                let mut class = Vec::new();
                let mut i = 0;
                while i < raw.len() {
                    // `a-z` only counts as a range with chars on both sides;
                    // a leading or trailing `-` is a literal dash.
                    if i + 2 < raw.len() && raw[i + 1] == '-' {
                        for r in (raw[i] as u32)..=(raw[i + 2] as u32) {
                            class.push(char::from_u32(r).expect("char range"));
                        }
                        i += 3;
                    } else {
                        class.push(raw[i]);
                        i += 1;
                    }
                }
                assert!(!class.is_empty(), "empty char class in `{pat}`");
                class
            } else {
                vec![c]
            };
            let (lo, hi) = if it.peek() == Some(&'{') {
                it.next();
                let spec: String = it.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let m = spec.trim().parse().expect("bad {m}");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push((chars, lo, hi));
        }
        atoms
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn pattern_parse_and_gen() {
            let mut rng = TestRng::for_test("pattern_parse_and_gen");
            for _ in 0..500 {
                let s = "[a-z][a-z0-9_]{0,8}".gen(&mut rng);
                assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
                assert!(s.chars().next().unwrap().is_ascii_lowercase());
                assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
                let t = "[a-z ']{0,12}".gen(&mut rng);
                assert!(t.len() <= 12);
                assert!(t
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\''));
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Mirror of `proptest::arbitrary::Arbitrary`, generate-only.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2.0e6 - 1.0e6
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
        }
    }

    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn gen(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds, mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::sample::Index`: a position into any collection,
    /// resolved against its length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// `prop::sample::Index`-style paths, as the real prelude exposes them.
pub mod prop {
    pub use crate::{collection, sample, strategy};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_fns!($cfg; $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::__proptest_fns!($crate::test_runner::ProptestConfig::default(); $($rest)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __strat = ($($strat,)+);
                for __case in 0..__config.cases {
                    let ($($arg,)+) = $crate::strategy::Strategy::gen(&__strat, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name),
                                __case,
                                msg
                            );
                        }
                    }
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
