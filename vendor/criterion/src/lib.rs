//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reproduces the API shape the workspace's ten benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `bench_with_input` / `finish`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `BatchSize` — backed by
//! a plain wall-clock loop instead of criterion's statistical machinery.
//! Each benchmark reports the mean time over an adaptively chosen number of
//! iterations; there is no warm-up, outlier rejection, or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; only a hint here, as in criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark name with an optional parameter, e.g. `bnl/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Runs closures and reports mean wall-clock time.
pub struct Bencher {
    label: String,
    /// Upper bound on measured iterations, set from `sample_size`.
    max_iters: u64,
}

impl Bencher {
    fn measure(&mut self, mut once: impl FnMut() -> Duration) {
        // One probe iteration decides how many more we can afford while
        // keeping each benchmark near the 200ms target budget.
        let probe = once();
        let target = Duration::from_millis(200);
        let extra = if probe.is_zero() {
            self.max_iters - 1
        } else {
            ((target.as_nanos() / probe.as_nanos()) as u64).min(self.max_iters - 1)
        };
        let mut total = probe;
        for _ in 0..extra {
            total += once();
        }
        let iters = 1 + extra;
        let mean = total / iters as u32;
        println!(
            "{:<48} time: {mean:>12.3?}   ({iters} iterations)",
            self.label
        );
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }
}

fn run_with_bencher(label: String, max_iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { label, max_iters };
    f(&mut b);
}

/// Mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_with_bencher(id.to_string(), self.sample_size, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<ID, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_with_bencher(label, self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_with_bencher(label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
