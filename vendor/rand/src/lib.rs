//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the exact API surface the workspace uses — `SmallRng` seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`] — on top of a
//! xoshiro256** generator (the same family real `SmallRng` uses on 64-bit
//! targets). Distributions are uniform; sampling uses modulo reduction,
//! whose bias is negligible for the range sizes in this workspace.

use std::ops::{Range, RangeInclusive};

/// Minimal mirror of `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Minimal mirror of `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Per-type uniform sampling, mirroring `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Uniform in `[lo, hi)` when `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                // Checked before the i128 arithmetic: an inverted range would
                // otherwise wrap to a huge unsigned span and sample garbage.
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                assert!(lo < hi || (inclusive && lo <= hi), "cannot sample empty range");
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let unit = (rng.next_u64() >> 11) as $t / denom as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Types that `gen_range` can sample from, mirroring `SampleRange`.
///
/// Single generic impls (as in real rand) so integer-literal ranges unify
/// with the numeric type the call site needs.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Minimal mirror of `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the algorithm behind real `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for u64 seeds.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Minimal mirror of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
